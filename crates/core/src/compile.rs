//! Top-level compiler driver.
//!
//! Ties the phases together: resolve → static pipeline → dynamic
//! compilation → resource optimization → placement → P4 code
//! generation, producing a [`CompiledProgram`] that executes directly
//! on the `camus-pipeline` substrate.

use camus_bdd::order::OrderHeuristic;
use camus_lang::ast::Rule;
use camus_lang::spec::Spec;
use camus_pipeline::phv::PhvLayout;
use camus_pipeline::pipeline::Pipeline;
use camus_pipeline::resources::{place_chain, AsicModel, PlacementReport};
use camus_pipeline::table::{ActionOp, Entry, Key, MatchKind, MatchValue, Table};
use camus_telemetry::{SpanKind, SpanSet, SpanTimer};

use crate::dynamic::{compile_dynamic, CompileStats, DynamicProgram};
use crate::error::CompileError;
use crate::resolve::{resolve, ResolveOptions};
use crate::statics::build_static;

pub use crate::statics::Encap;

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Packet encapsulation of the application messages.
    pub encap: Encap,
    /// Field-ordering heuristic (§3.2: "simple heuristics often work
    /// well in practice").
    pub heuristic: OrderHeuristic,
    /// Window for aggregate macros without a matching `@query_counter`,
    /// µs.
    pub default_window_us: u64,
    /// Resource model placed against.
    pub asic: AsicModel,
    /// Fail compilation when the program does not fit the ASIC.
    pub enforce_placement: bool,
    /// Low-resolution domain mapping (§3.2's third optimization): remap
    /// a range field onto a compact domain when its predicates cut the
    /// field into at most `2^bits` elementary intervals. `None` = off.
    pub compress_bits: Option<u32>,
    /// BDD reduction (iii) — same-field implication pruning. On by
    /// default; exposed for the ablation benches.
    pub semantic_pruning: bool,
    /// Shards for the parallel BDD build: rules are partitioned, built
    /// on worker threads and merged. `0` = one shard per available
    /// core. The compiled program is bit-identical at any value.
    pub compile_shards: usize,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            // The paper's running application: ITCH add-orders inside
            // Ethernet/IPv4/UDP/MoldUDP64.
            encap: Encap::EthIpUdpMold {
                message_select: Some(("msg_type".to_string(), u64::from(b'A'))),
            },
            heuristic: OrderHeuristic::ExactFirst,
            default_window_us: 100,
            asic: AsicModel::tofino32(),
            enforce_placement: false,
            compress_bits: None,
            semantic_pruning: true,
            compile_shards: 0,
        }
    }
}

impl CompilerOptions {
    /// Options for raw (unencapsulated) message tests.
    pub fn raw() -> Self {
        CompilerOptions {
            encap: Encap::Raw,
            ..Default::default()
        }
    }
}

/// A fully compiled program.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Executable data-plane instance (parser + tables + groups +
    /// registers).
    pub pipeline: Pipeline,
    /// Compilation statistics (the Figure 5 metrics).
    pub stats: CompileStats,
    /// Resource placement against the configured ASIC.
    pub placement: PlacementReport,
    /// Generated P4-14 source for the static pipeline.
    pub p4_source: String,
    /// Generated P4-16 (v1model) source for the static pipeline.
    pub p4_16_source: String,
    /// Generated control-plane rules (one `table_add` per line).
    pub control_plane: String,
    /// The rule BDD, for introspection and DOT export.
    pub bdd: camus_bdd::Bdd,
    /// Wall-clock phase timings: the dynamic compiler's shard
    /// build/merge/emit spans plus the end-to-end compile span. Kept
    /// out of [`CompileStats`], which must stay shard-count-invariant.
    pub spans: SpanSet,
}

/// The Camus compiler (Fig. 6's "Camus compiler" box).
#[derive(Debug, Clone)]
pub struct Compiler {
    spec: Spec,
    options: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler for a message-format spec.
    pub fn new(spec: Spec, options: CompilerOptions) -> Result<Self, CompileError> {
        if spec.instances.is_empty() {
            return Err(CompileError::BadSpec(
                "spec declares no header instances".into(),
            ));
        }
        if spec.query_fields.is_empty() && spec.counters.is_empty() {
            return Err(CompileError::BadSpec(
                "spec declares no @query_field or @query_counter annotations".into(),
            ));
        }
        Ok(Compiler { spec, options })
    }

    /// The spec being compiled against.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The active options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compiles a rule set end to end.
    pub fn compile(&self, rules: &[Rule]) -> Result<CompiledProgram, CompileError> {
        let compile_timer = SpanTimer::start();
        let ropts = ResolveOptions {
            heuristic: self.options.heuristic,
            default_window_us: self.options.default_window_us,
        };
        let resolved = resolve(&self.spec, rules, &ropts)?;
        let statics = build_static(&self.spec, &resolved.fields, &self.options.encap)?;
        let mut dynp = compile_dynamic(
            &resolved,
            &statics,
            rules.len(),
            self.options.semantic_pruning,
            self.options.compile_shards,
        )?;

        let mut layout = statics.layout.clone();
        if let Some(bits) = self.options.compress_bits {
            compress_domains(&mut dynp, &mut layout, bits)?;
        }

        // Dependency levels and stage placement share one convention
        // with the live update plane (`place_chain`): compression
        // tables at level 0, main tables chained behind them. That
        // keeps offline `fits()` and runtime admission byte-identical.
        let placement = place_chain(&dynp.tables, &self.options.asic);
        if self.options.enforce_placement {
            if let Some(err) = &placement.failure {
                return Err(CompileError::Admission(err.clone()));
            }
        }

        let p4_source = crate::p4gen::render_p4(&self.spec, &statics, &dynp, &layout);
        let p4_16_source = crate::p4gen::render_p4_16(&self.spec, &statics, &dynp, &layout);
        let control_plane = dynp.render_control_plane();

        let DynamicProgram {
            tables,
            mcast,
            stats,
            bdd,
            mut spans,
        } = dynp;
        compile_timer.stop_into(&mut spans, SpanKind::Compile);
        let pipeline = Pipeline {
            layout,
            parser: statics.parser.clone(),
            tables,
            mcast,
            registers: statics.registers.clone(),
            state_bindings: statics.state_bindings.clone(),
            init_fields: vec![(statics.state_meta, 0)],
            exec: Default::default(),
        };
        Ok(CompiledProgram {
            pipeline,
            stats,
            placement,
            p4_source,
            p4_16_source,
            control_plane,
            bdd,
            spans,
        })
    }
}

/// Applies the low-resolution domain mapping: for every per-field table
/// whose value key is a range, collect the elementary intervals cut by
/// its entries and — when few enough — route matching through a
/// compression table onto a `⌈log₂⌉`-bit compact domain.
fn compress_domains(
    dynp: &mut DynamicProgram,
    layout: &mut PhvLayout,
    max_bits: u32,
) -> Result<(), CompileError> {
    let mut out: Vec<Table> = Vec::with_capacity(dynp.tables.len() * 2);
    let tables = std::mem::take(&mut dynp.tables);
    for mut table in tables {
        let is_range_value_table = table.keys.len() == 2 && table.keys[1].kind == MatchKind::Range;
        if !is_range_value_table || table.is_empty() {
            out.push(table);
            continue;
        }
        let raw_key = table.keys[1];
        let max = if raw_key.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << raw_key.bits) - 1
        };

        // Cut points: starts of every constrained region and the point
        // just past every region.
        let mut cuts: Vec<u64> = Vec::new();
        for e in table.entries() {
            match e.matches[1] {
                MatchValue::Range { lo, hi } => {
                    if lo > 0 {
                        cuts.push(lo);
                    }
                    if hi < max {
                        cuts.push(hi + 1);
                    }
                }
                MatchValue::Exact(v) => {
                    if v > 0 {
                        cuts.push(v);
                    }
                    if v < max {
                        cuts.push(v + 1);
                    }
                }
                _ => {}
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let intervals = cuts.len() + 1;
        if intervals > (1usize << max_bits.min(32)) {
            out.push(table); // too many intervals: keep raw ranges
            continue;
        }
        let cbits = (usize::BITS - (intervals - 1).leading_zeros()).max(1);

        // idx(v) = number of cut points <= v.
        let idx = |v: u64| -> u64 { cuts.partition_point(|&c| c <= v) as u64 };

        let compact = layout.add(format!("meta.cmp_{}", table.name), cbits);
        let mut cmp_table = Table::new(
            format!("t_cmp_{}", table.name.trim_start_matches("t_")),
            vec![raw_key],
            vec![],
        );
        let mut lo = 0u64;
        for (i, &cut) in cuts.iter().enumerate() {
            cmp_table.add_entry(Entry {
                priority: 0,
                matches: vec![MatchValue::Range { lo, hi: cut - 1 }],
                ops: vec![ActionOp::SetField(compact, i as u64)],
            })?;
            lo = cut;
        }
        cmp_table.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Range { lo, hi: max }],
            ops: vec![ActionOp::SetField(compact, cuts.len() as u64)],
        })?;

        // Rewrite the main table onto the compact domain.
        let mut rewritten = Table::new(
            table.name.clone(),
            vec![
                table.keys[0],
                Key {
                    field: compact,
                    kind: MatchKind::Range,
                    bits: cbits,
                },
            ],
            table.default_ops.clone(),
        );
        for e in table.entries() {
            let m = match e.matches[1] {
                MatchValue::Range { lo, hi } => {
                    let (l, h) = (idx(lo), idx(hi));
                    if l == h {
                        MatchValue::Exact(l)
                    } else {
                        MatchValue::Range { lo: l, hi: h }
                    }
                }
                MatchValue::Exact(v) => MatchValue::Exact(idx(v)),
                other => other,
            };
            rewritten.add_entry(Entry {
                priority: e.priority,
                matches: vec![e.matches[0], m],
                ops: e.ops.clone(),
            })?;
        }
        // Update stats bookkeeping: the compression table adds entries.
        dynp.stats
            .table_entries
            .push((cmp_table.name.clone(), cmp_table.len()));
        dynp.stats.total_entries += cmp_table.len();
        table = rewritten;
        out.push(cmp_table);
        out.push(table);
    }
    dynp.tables = out;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::{parse_program, parse_spec};
    use camus_pipeline::PortId;

    fn itch_compiler(options: CompilerOptions) -> Compiler {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        Compiler::new(spec, options).unwrap()
    }

    fn raw_itch_packet(symbol: &str, shares: u32, price: u32) -> Vec<u8> {
        let mut m = vec![b'A'];
        m.extend_from_slice(&[0; 10]);
        m.extend_from_slice(&[0; 8]);
        m.push(b'B');
        m.extend_from_slice(&shares.to_be_bytes());
        let mut stock = [b' '; 8];
        for (i, c) in symbol.bytes().take(8).enumerate() {
            stock[i] = c;
        }
        m.extend_from_slice(&stock);
        m.extend_from_slice(&price.to_be_bytes());
        m
    }

    #[test]
    fn end_to_end_raw_compile_and_execute() {
        let c = itch_compiler(CompilerOptions::raw());
        let rules = parse_program(
            "stock == GOOGL : fwd(1)\n\
             stock == MSFT and price > 1000 : fwd(2,3)\n\
             shares > 100 and shares < 1000 : fwd(4)",
        )
        .unwrap();
        let prog = c.compile(&rules).unwrap();
        let mut pipe = prog.pipeline;

        let d = pipe.process(&raw_itch_packet("GOOGL", 50, 10), 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1)]);
        let d = pipe.process(&raw_itch_packet("MSFT", 50, 2000), 0).unwrap();
        assert_eq!(d.ports, vec![PortId(2), PortId(3)]);
        let d = pipe.process(&raw_itch_packet("MSFT", 50, 500), 0).unwrap();
        assert!(d.dropped());
        let d = pipe.process(&raw_itch_packet("ORCL", 500, 10), 0).unwrap();
        assert_eq!(d.ports, vec![PortId(4)]);
        // Overlap: GOOGL with matching shares hits both rules.
        let d = pipe.process(&raw_itch_packet("GOOGL", 500, 10), 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1), PortId(4)]);
    }

    #[test]
    fn domain_compression_preserves_semantics() {
        let rules = parse_program(
            "price > 100 and price < 200 : fwd(1)\n\
             price > 150 : fwd(2)\n\
             price == 175 : fwd(3)\n\
             shares < 60 : fwd(4)",
        )
        .unwrap();
        let plain = itch_compiler(CompilerOptions::raw())
            .compile(&rules)
            .unwrap();
        let compressed = itch_compiler(CompilerOptions {
            compress_bits: Some(8),
            ..CompilerOptions::raw()
        })
        .compile(&rules)
        .unwrap();
        // Compression added one table per range field with entries.
        assert!(compressed.pipeline.tables.len() > plain.pipeline.tables.len());

        let mut p1 = plain.pipeline;
        let mut p2 = compressed.pipeline;
        for price in [0u32, 100, 101, 149, 150, 151, 175, 199, 200, 5000] {
            for shares in [0u32, 59, 60, 1000] {
                let pkt = raw_itch_packet("X", shares, price);
                let d1 = p1.process(&pkt, 0).unwrap();
                let d2 = p2.process(&pkt, 0).unwrap();
                assert_eq!(d1.ports, d2.ports, "price={price} shares={shares}");
            }
        }
    }

    #[test]
    fn compression_reduces_tcam_charge() {
        let rules =
            parse_program("price > 100 and price < 10000 : fwd(1)\nprice > 5000 : fwd(2)").unwrap();
        let plain = itch_compiler(CompilerOptions::raw())
            .compile(&rules)
            .unwrap();
        let compressed = itch_compiler(CompilerOptions {
            compress_bits: Some(8),
            ..CompilerOptions::raw()
        })
        .compile(&rules)
        .unwrap();
        // The compacted main table's slices shrink; total TCAM charge
        // (incl. the compression table) must not explode.
        assert!(compressed.placement.tcam_slices <= plain.placement.tcam_slices * 2);
    }

    #[test]
    fn enforce_placement_rejects_oversized_programs() {
        let tiny = AsicModel {
            stages: 2,
            sram_entries_per_stage: 4,
            tcam_entries_per_stage: 2,
            ..AsicModel::tofino32()
        };
        let c = itch_compiler(CompilerOptions {
            asic: tiny,
            enforce_placement: true,
            ..CompilerOptions::raw()
        });
        let src: String = (0..64)
            .map(|i| format!("stock == S{i} and price > {i} : fwd({})\n", i % 8 + 1))
            .collect();
        let rules = parse_program(&src).unwrap();
        let err = c.compile(&rules).unwrap_err();
        let CompileError::Admission(adm) = err else {
            panic!("expected Admission error, got {err}");
        };
        assert!(adm.needed > adm.available);
    }

    #[test]
    fn compiler_rejects_queryless_specs() {
        let spec = parse_spec("header_type t { fields { x: 8; } }\nheader t h;").unwrap();
        assert!(matches!(
            Compiler::new(spec, CompilerOptions::raw()),
            Err(CompileError::BadSpec(_))
        ));
    }

    #[test]
    fn artifacts_are_rendered() {
        let c = itch_compiler(CompilerOptions::raw());
        let rules = parse_program("stock == GOOGL : fwd(1)").unwrap();
        let prog = c.compile(&rules).unwrap();
        assert!(prog.p4_source.contains("header_type"));
        assert!(prog.control_plane.contains("table_add"));
        assert!(prog.placement.fits());
    }

    #[test]
    fn mold_encap_end_to_end() {
        let c = itch_compiler(CompilerOptions::default());
        let rules = parse_program("stock == GOOGL : fwd(7)").unwrap();
        let prog = c.compile(&rules).unwrap();
        let mut pipe = prog.pipeline;

        let msg = raw_itch_packet("GOOGL", 10, 10);
        let other = raw_itch_packet("AAPL", 10, 10);
        let pkt = feed_packet(&[&other, &msg]);
        let d = pipe.process(&pkt, 0).unwrap();
        assert_eq!(d.ports, vec![PortId(7)]);
        assert_eq!(d.messages, 2);
        assert_eq!(d.matched_messages, 1);
    }

    fn feed_packet(msgs: &[&[u8]]) -> Vec<u8> {
        let mut mold = vec![0u8; 10];
        mold.extend_from_slice(&1u64.to_be_bytes());
        mold.extend_from_slice(&(msgs.len() as u16).to_be_bytes());
        for m in msgs {
            mold.extend_from_slice(&(m.len() as u16).to_be_bytes());
            mold.extend_from_slice(m);
        }
        let mut udp = vec![0u8; 8];
        udp[4..6].copy_from_slice(&((8 + mold.len()) as u16).to_be_bytes());
        udp.extend_from_slice(&mold);
        let mut ip = vec![0x45u8, 0, 0, 0, 0, 0, 0, 0, 16, 17, 0, 0];
        ip[2..4].copy_from_slice(&((20 + udp.len()) as u16).to_be_bytes());
        ip.extend_from_slice(&[0; 8]);
        ip.extend_from_slice(&udp);
        let mut eth = vec![0u8; 12];
        eth.extend_from_slice(&0x0800u16.to_be_bytes());
        eth.extend_from_slice(&ip);
        eth
    }
}
