//! # camus-core — the Camus packet-subscription compiler
//!
//! The paper's primary contribution (§3): a compiler that turns a
//! message-format specification and a set of packet subscriptions into
//! a switch data-plane program.
//!
//! Compilation has two steps:
//!
//! * **Static** ([`statics`]) — once per application: generate the PHV
//!   layout, the parser program for the application's encapsulation
//!   (raw, or the Ethernet/IPv4/UDP/MoldUDP64 market-data stack), the
//!   register block for `@query_counter` state, the per-field table
//!   skeletons, and P4-14 source text for the whole pipeline
//!   ([`p4gen`]).
//! * **Dynamic** ([`dynamic`]) — on every rule update: normalize the
//!   subscription rules to disjunctive form, resolve operands against
//!   the spec ([`resolve`]), build the multi-terminal BDD, slice it
//!   into per-field components and translate every In→Out path into a
//!   match-action table entry (Algorithm 1), allocating multicast
//!   groups for multi-port action sets and linking state updates to
//!   register slots.
//!
//! The top-level entry point is [`Compiler`]:
//!
//! ```
//! use camus_core::{Compiler, CompilerOptions};
//! use camus_lang::{parse_program, parse_spec};
//!
//! let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
//! let rules = parse_program(
//!     "stock == GOOGL : fwd(1)\n\
//!      stock == MSFT and price > 1000 : fwd(2,3)",
//! )
//! .unwrap();
//! let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
//! let program = compiler.compile(&rules).unwrap();
//! assert!(program.stats.total_entries > 0);
//!
//! // The compiled program is directly executable on the pipeline
//! // substrate:
//! let mut pipeline = program.pipeline;
//! let pkt = camus_itch_example_packet();
//! let decision = pipeline.process(&pkt, 0).unwrap();
//! assert_eq!(decision.ports, vec![camus_pipeline::PortId(1)]);
//!
//! fn camus_itch_example_packet() -> Vec<u8> {
//!     // A GOOGL add-order inside Ethernet/IPv4/UDP/MoldUDP64. Built by
//!     // hand here to keep this crate free of a camus-itch dependency.
//!     let msg = {
//!         let mut m = vec![b'A'];
//!         m.extend_from_slice(&[0; 10]); // locate, tracking, timestamp
//!         m.extend_from_slice(&[0; 8]); // order ref
//!         m.push(b'B');
//!         m.extend_from_slice(&500u32.to_be_bytes());
//!         m.extend_from_slice(b"GOOGL   ");
//!         m.extend_from_slice(&1_000_000u32.to_be_bytes());
//!         m
//!     };
//!     let mut mold = vec![0u8; 10]; // session
//!     mold.extend_from_slice(&1u64.to_be_bytes()); // sequence
//!     mold.extend_from_slice(&1u16.to_be_bytes()); // count
//!     mold.extend_from_slice(&(msg.len() as u16).to_be_bytes());
//!     mold.extend_from_slice(&msg);
//!     let mut udp = vec![0u8; 8];
//!     udp[4..6].copy_from_slice(&((8 + mold.len()) as u16).to_be_bytes());
//!     udp.extend_from_slice(&mold);
//!     let mut ip = vec![0x45u8, 0, 0, 0, 0, 0, 0, 0, 16, 17, 0, 0];
//!     ip[2..4].copy_from_slice(&((20 + udp.len()) as u16).to_be_bytes());
//!     ip.extend_from_slice(&[0; 8]); // src/dst
//!     ip.extend_from_slice(&udp);
//!     let mut eth = vec![0u8; 12];
//!     eth.extend_from_slice(&0x0800u16.to_be_bytes());
//!     eth.extend_from_slice(&ip);
//!     eth
//! }
//! ```

pub mod compile;
pub mod dynamic;
pub mod error;
pub mod incremental;
pub mod p4gen;
pub mod partition;
pub mod resolve;
pub mod statics;

pub use compile::{CompiledProgram, Compiler, CompilerOptions, Encap};
pub use dynamic::CompileStats;
pub use error::CompileError;
pub use incremental::{apply_delta, IncrementalCompiler, TableDelta, UpdateReport};
pub use partition::{
    full_mask, owner_in_subset, owner_of, rule_owners, PartitionPlan, TableAssignment,
};
