//! Fabric partition planning: slicing one compiled program across a
//! spine/leaf topology of engines.
//!
//! The paper compiles one subscription program onto a single Tofino
//! pipeline. The fabric layer generalizes that to a two-tier topology
//! in the spirit of SNAP (Arashloo et al.): a spine that routes each
//! packet by its *sharding symbol* (the exact-match field the program
//! is content-addressed on — stock symbol, content key, Siena symbol
//! attribute) to the one leaf that owns that symbol, and leaves that
//! each hold only the table entries their owned symbols can reach.
//!
//! The plan is computed over the *compiled* tables, not the rules, so
//! it inherits the compiler's shard-count invariance: the compiled
//! program is bit-identical at any `compile_shards`, hence so is the
//! plan. Slicing works by forward state reachability:
//!
//! * The per-field tables form a chain keyed on `(meta.state, field)`;
//!   a table miss passes the state through unchanged, so the set of
//!   states reachable on a leaf only ever grows front-to-back.
//! * Entries of the **sharding table** (the one keyed on the shard
//!   field) that pin an exact symbol live only on that symbol's owner
//!   leaf ([`owner_of`]); wildcard/exclusion rows ([`MatchValue::Any`])
//!   are replicated everywhere, preserving their priority shadowing —
//!   a leaf only ever sees packets whose symbol it owns, so the
//!   pinned row that would shadow a wildcard is always present where
//!   it matters.
//! * Every other state-chained entry is retained on a leaf iff its
//!   entry state is reachable there; non-state tables (domain
//!   compression) and the multicast groups are replicated in full.
//!
//! Two invariants make the fabric provably equivalent to the big
//! switch (and are property-tested in `crates/core/tests/prop.rs`):
//! every original entry appears on at least one leaf (cover), and each
//! slice contains only original entries in original relative order
//! (soundness). Slices may *overlap* on replicated rows; the
//! per-entry [`TableAssignment::masks`] record exactly which leaves
//! hold each entry, so the union-by-provenance reassembles the
//! original table set entry-for-entry.

use std::collections::HashSet;

use camus_lang::ast::{Atom, Cond, Operand, RelOp, Rule, Value};
use camus_pipeline::phv::PhvField;
use camus_pipeline::pipeline::Pipeline;
use camus_pipeline::table::{ActionOp, MatchValue, Table};

use crate::error::CompileError;

/// Maximum leaf count: leaf membership is a `u64` bitmask.
pub const MAX_LEAVES: usize = 64;

/// SplitMix64 finalizer — the same mix the engine's shard router uses,
/// duplicated here because `camus-core` sits below `camus-engine` in
/// the dependency order. Symbol ownership and worker sharding agreeing
/// on the mix is *not* required for correctness (any deterministic map
/// works), but using one family keeps key distribution uniform.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The leaf that owns a sharding-symbol value. Total over the whole
/// value domain, so every packet routes somewhere even when its symbol
/// appears in no rule — required for wildcard rules, whose entries are
/// replicated on every leaf.
#[inline]
pub fn owner_of(value: u64, leaves: usize) -> usize {
    let n = leaves.max(1) as u64;
    (mix64(value) % n) as usize
}

/// Salt for the failover rehash so a dead leaf's symbols don't all
/// collapse onto the survivor that happens to follow it mod N.
const REHASH_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The leaf that owns `value` when only the leaves in `live_mask` (of
/// a `total`-leaf fabric) survive. Ownership is *stable for
/// survivors*: if `owner_of(value, total)` is still alive it keeps the
/// symbol — and its register state — untouched; only symbols whose
/// primary owner died are rehashed, deterministically, across the
/// survivors. With every leaf alive this is exactly [`owner_of`].
#[inline]
pub fn owner_in_subset(value: u64, total: usize, live_mask: u64) -> usize {
    let mask = live_mask & full_mask(total);
    let primary = owner_of(value, total);
    if mask == 0 || mask & (1 << primary) != 0 {
        return primary;
    }
    let live = mask.count_ones() as u64;
    let mut idx = mix64(value ^ REHASH_SALT) % live;
    let mut m = mask;
    loop {
        let bit = m.trailing_zeros() as usize;
        if idx == 0 {
            return bit;
        }
        idx -= 1;
        m &= m - 1;
    }
}

/// Per-table entry→leaf assignment: `masks[i]` has bit `l` set iff
/// entry `i` (in the original table's insertion order) is held by
/// leaf `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableAssignment {
    /// Table name, matching [`Table::name`].
    pub table: String,
    /// One leaf bitmask per entry, in insertion order.
    pub masks: Vec<u64>,
}

/// A computed fabric partition of one compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Number of leaf *slots* (dead ones included — slot indices are
    /// stable across failover).
    pub leaves: usize,
    /// Bitmask of the leaves this plan actually places entries on.
    /// `full_mask(leaves)` for a healthy fabric; a strict subset for a
    /// failover plan computed by [`PartitionPlan::compute_subset`].
    pub live_mask: u64,
    /// PHV-layout name of the sharding field (e.g. `"ev.sym0"`).
    pub shard_field: String,
    /// Per-table entry assignments, in pipeline table order.
    pub assignment: Vec<TableAssignment>,
    /// Entries whose entry state was unreachable on every leaf
    /// (cannot happen for compiler-emitted programs; such entries are
    /// replicated everywhere so the cover invariant still holds).
    pub orphan_entries: usize,
}

impl PartitionPlan {
    /// Computes the partition of `pipeline` over `leaves` leaves,
    /// sharding on the PHV field named `shard_field`.
    pub fn compute(
        pipeline: &Pipeline,
        shard_field: &str,
        leaves: usize,
    ) -> Result<PartitionPlan, CompileError> {
        Self::compute_subset(pipeline, shard_field, leaves, full_mask(leaves.min(64)))
    }

    /// Computes a *failover* partition: the same slicing rules, but
    /// entries are placed only on the leaves in `live_mask`. Symbols
    /// owned by a live leaf stay put (their per-shard register state
    /// survives the epoch via `carry_from`); a dead leaf's symbols are
    /// rehashed onto survivors by [`owner_in_subset`]. Dead slots get
    /// empty slices, so slot indices — and the spine's routing table —
    /// stay stable across the failover epoch.
    pub fn compute_subset(
        pipeline: &Pipeline,
        shard_field: &str,
        leaves: usize,
        live_mask: u64,
    ) -> Result<PartitionPlan, CompileError> {
        if leaves == 0 || leaves > MAX_LEAVES {
            return Err(CompileError::BadSpec(format!(
                "fabric needs 1..={MAX_LEAVES} leaves, got {leaves}"
            )));
        }
        let live_mask = live_mask & full_mask(leaves);
        if live_mask == 0 {
            return Err(CompileError::BadSpec(
                "failover plan needs at least one live leaf".into(),
            ));
        }
        let shard_phv = pipeline.layout.get(shard_field).ok_or_else(|| {
            CompileError::BadSpec(format!("shard field `{shard_field}` not in PHV layout"))
        })?;
        let state_meta = pipeline
            .layout
            .get("meta.state")
            .ok_or_else(|| CompileError::BadSpec("pipeline has no meta.state register".into()))?;
        let init_state = pipeline
            .init_fields
            .iter()
            .find(|(f, _)| *f == state_meta)
            .map(|&(_, v)| v)
            .unwrap_or(0);

        // Replicated rows land on every *live* leaf; dead slots hold
        // nothing.
        let all_mask = live_mask;
        // Forward state reachability per leaf. Misses pass the state
        // through unchanged, so sets only grow. Dead leaves start (and
        // stay) unreachable.
        let mut reach: Vec<HashSet<u64>> = (0..leaves)
            .map(|l| {
                if live_mask & (1 << l) != 0 {
                    HashSet::from([init_state])
                } else {
                    HashSet::new()
                }
            })
            .collect();
        let mut assignment = Vec::with_capacity(pipeline.tables.len());
        let mut orphan_entries = 0usize;

        for table in &pipeline.tables {
            let state_keyed = table
                .keys
                .first()
                .map(|k| k.field == state_meta)
                .unwrap_or(false);
            let shard_table = state_keyed
                && table
                    .keys
                    .get(1)
                    .map(|k| k.field == shard_phv)
                    .unwrap_or(false);

            let mut masks = Vec::with_capacity(table.len());
            if !state_keyed {
                // Domain-compression tables (keyed on a raw field, no
                // state) run identically everywhere.
                masks.resize(table.len(), all_mask);
            } else {
                for e in table.entries() {
                    let mut mask = 0u64;
                    for (l, r) in reach.iter().enumerate() {
                        if live_mask & (1 << l) == 0 {
                            continue;
                        }
                        let state_ok = match e.matches[0] {
                            MatchValue::Exact(s) => r.contains(&s),
                            // Wildcard state rows (should not occur in
                            // emitted programs) apply on every leaf.
                            _ => true,
                        };
                        if !state_ok {
                            continue;
                        }
                        let owned = if shard_table {
                            match e.matches.get(1) {
                                // A pinned symbol row lives only on
                                // the symbol's (possibly failed-over)
                                // owner.
                                Some(MatchValue::Exact(v)) => {
                                    owner_in_subset(*v, leaves, live_mask) == l
                                }
                                // Wildcard/exclusion rows replicate.
                                _ => true,
                            }
                        } else {
                            true
                        };
                        if owned {
                            mask |= 1 << l;
                        }
                    }
                    if mask == 0 {
                        // Unreachable entry: replicate so the cover
                        // invariant (union of slices == original)
                        // survives even degenerate inputs.
                        orphan_entries += 1;
                        mask = all_mask;
                    }
                    masks.push(mask);
                }
                // Grow each leaf's reachable set with the out-states
                // of the entries it retained.
                for (e, &mask) in table.entries().zip(&masks) {
                    for op in &e.ops {
                        if let ActionOp::SetField(f, v) = op {
                            if *f == state_meta {
                                for (l, r) in reach.iter_mut().enumerate() {
                                    if mask & (1 << l) != 0 {
                                        r.insert(*v);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            assignment.push(TableAssignment {
                table: table.name.clone(),
                masks,
            });
        }

        Ok(PartitionPlan {
            leaves,
            live_mask,
            shard_field: shard_field.to_string(),
            assignment,
            orphan_entries,
        })
    }

    /// Builds leaf `leaf`'s slice of `pipeline`: the same parser,
    /// layout, registers, bindings, init fields and multicast groups,
    /// with each table filtered down to the entries this leaf holds
    /// (original relative order preserved, so priority tie-breaks are
    /// identical to the big switch).
    ///
    /// `pipeline` must be the program the plan was computed from.
    pub fn slice(&self, pipeline: &Pipeline, leaf: usize) -> Pipeline {
        assert!(leaf < self.leaves, "leaf {leaf} out of range");
        assert_eq!(
            pipeline.tables.len(),
            self.assignment.len(),
            "plan does not match this pipeline"
        );
        let bit = 1u64 << leaf;
        let tables = pipeline
            .tables
            .iter()
            .zip(&self.assignment)
            .map(|(t, a)| {
                let mut out = Table::new(t.name.clone(), t.keys.clone(), t.default_ops.clone());
                for (e, &mask) in t.entries().zip(&a.masks) {
                    if mask & bit != 0 {
                        out.add_entry(e.clone())
                            .expect("entry came from a validated table");
                    }
                }
                out
            })
            .collect();
        Pipeline {
            layout: pipeline.layout.clone(),
            parser: pipeline.parser.clone(),
            tables,
            mcast: pipeline.mcast.clone(),
            registers: pipeline.registers.clone(),
            state_bindings: pipeline.state_bindings.clone(),
            init_fields: pipeline.init_fields.clone(),
            exec: Default::default(),
        }
    }

    /// All leaf slices, in leaf order.
    pub fn slices(&self, pipeline: &Pipeline) -> Vec<Pipeline> {
        (0..self.leaves).map(|l| self.slice(pipeline, l)).collect()
    }

    /// Total entries held by one leaf across every table.
    pub fn leaf_entries(&self, leaf: usize) -> usize {
        let bit = 1u64 << leaf;
        self.assignment
            .iter()
            .map(|a| a.masks.iter().filter(|&&m| m & bit != 0).count())
            .sum()
    }

    /// The PHV slot of the sharding field in `pipeline`'s layout.
    pub fn shard_phv(&self, pipeline: &Pipeline) -> Option<PhvField> {
        pipeline.layout.get(&self.shard_field)
    }
}

/// Bitmask with the low `leaves` bits set.
#[inline]
pub fn full_mask(leaves: usize) -> u64 {
    if leaves >= 64 {
        u64::MAX
    } else {
        (1u64 << leaves) - 1
    }
}

/// Control-plane rule ownership: assigns every rule to exactly one
/// leaf. A rule that pins the shard field to one or more symbols (a
/// positive `field == SYM` atom) is owned by the owner of its smallest
/// pinned value; symbol-free rules (their entries are replicated on
/// every leaf) get a deterministic owner from their index, so the
/// assignment is a pure function of `(rules, shard_field, leaves)` —
/// in particular identical at any compile thread count.
pub fn rule_owners(rules: &[Rule], shard_field: &str, bits: u32, leaves: usize) -> Vec<usize> {
    rules
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut pinned: Vec<u64> = Vec::new();
            collect_pinned(&r.condition, shard_field, bits, true, &mut pinned);
            match pinned.iter().min() {
                Some(&v) => owner_of(v, leaves),
                None => owner_of(i as u64, leaves),
            }
        })
        .collect()
}

/// Collects values `v` from positive-polarity `shard_field == v` atoms.
/// Negated equalities don't pin a rule to a symbol (the rule matches
/// every *other* symbol), so polarity flips under `Not`.
fn collect_pinned(cond: &Cond, field: &str, bits: u32, positive: bool, out: &mut Vec<u64>) {
    match cond {
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_pinned(a, field, bits, positive, out);
            collect_pinned(b, field, bits, positive, out);
        }
        Cond::Not(a) => collect_pinned(a, field, bits, !positive, out),
        Cond::Atom(Atom { operand, op, value }) => {
            if !positive || *op != RelOp::Eq {
                return;
            }
            let Operand::Field(fr) = operand else {
                return;
            };
            // Rules may use the short field name (`sym0`) while the
            // PHV layout qualifies it (`ev.sym0`); match either.
            let name = fr.field.as_str();
            let matches_field =
                name == field || field.rsplit('.').next() == Some(name) || name.ends_with(field);
            if !matches_field {
                return;
            }
            let v = match value {
                Value::Int(n) => *n,
                Value::Symbol(_) => value.as_u64(bits),
            };
            out.push(v);
        }
        Cond::True => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Compiler, CompilerOptions};
    use camus_lang::{parse_program, parse_spec};
    use camus_pipeline::PortId;

    const SPEC: &str = "header_type ev_t { fields { sym: 64; val: 32; } }\n\
                        header ev_t ev;\n\
                        @query_field_exact(ev.sym)\n\
                        @query_field(ev.val)\n";

    fn compile(rules: &str) -> Pipeline {
        let spec = parse_spec(SPEC).unwrap();
        let c = Compiler::new(spec, CompilerOptions::raw()).unwrap();
        c.compile(&parse_program(rules).unwrap()).unwrap().pipeline
    }

    fn event(sym: &str, val: u32) -> Vec<u8> {
        let mut b = camus_lang::symbol::encode_symbol(sym, 64)
            .to_be_bytes()
            .to_vec();
        b.extend_from_slice(&val.to_be_bytes());
        b
    }

    fn ports(pipe: &mut Pipeline, ev: &[u8]) -> Vec<PortId> {
        pipe.process(ev, 0).unwrap().ports
    }

    const RULES: &str = "sym == AA : fwd(1)\n\
                         sym == BB and val > 10 : fwd(2)\n\
                         sym == CC : fwd(3)\n\
                         val > 50 : fwd(9)\n\
                         sym == AA and val < 5 : fwd(4)";

    #[test]
    fn slices_cover_and_contain_only_original_entries() {
        let pipeline = compile(RULES);
        for leaves in [1usize, 2, 3, 4] {
            let plan = PartitionPlan::compute(&pipeline, "ev.sym", leaves).unwrap();
            assert_eq!(plan.orphan_entries, 0);
            for (t, a) in pipeline.tables.iter().zip(&plan.assignment) {
                assert_eq!(t.len(), a.masks.len());
                for &m in &a.masks {
                    assert_ne!(m, 0, "entry unassigned in {}", t.name);
                    assert_eq!(m & !((1u64 << leaves) - 1), 0, "mask beyond leaf count");
                }
            }
        }
    }

    #[test]
    fn pinned_symbol_entries_live_only_on_their_owner() {
        let pipeline = compile(RULES);
        let leaves = 4;
        let plan = PartitionPlan::compute(&pipeline, "ev.sym", leaves).unwrap();
        let shard_phv = pipeline.layout.get("ev.sym").unwrap();
        for (t, a) in pipeline.tables.iter().zip(&plan.assignment) {
            let is_shard = t.keys.get(1).map(|k| k.field == shard_phv).unwrap_or(false);
            if !is_shard {
                continue;
            }
            for (e, &m) in t.entries().zip(&a.masks) {
                if let MatchValue::Exact(v) = e.matches[1] {
                    assert_eq!(
                        m,
                        1 << owner_of(v, leaves),
                        "pinned row for {v:#x} replicated beyond its owner"
                    );
                }
            }
        }
    }

    #[test]
    fn routed_slices_forward_like_the_big_switch() {
        let pipeline = compile(RULES);
        for leaves in [1usize, 2, 3, 4] {
            let plan = PartitionPlan::compute(&pipeline, "ev.sym", leaves).unwrap();
            let mut slices = plan.slices(&pipeline);
            let mut big = pipeline.clone();
            for sym in ["AA", "BB", "CC", "ZZ"] {
                for val in [0u32, 3, 20, 60, 100] {
                    let ev = event(sym, val);
                    let key = camus_lang::symbol::encode_symbol(sym, 64);
                    let leaf = owner_of(key, leaves);
                    assert_eq!(
                        ports(&mut slices[leaf], &ev),
                        ports(&mut big, &ev),
                        "leaves={leaves} sym={sym} val={val}"
                    );
                }
            }
        }
    }

    #[test]
    fn rule_owners_pin_symbol_rules_and_spread_wildcards() {
        let rules = parse_program(RULES).unwrap();
        let owners = rule_owners(&rules, "ev.sym", 64, 4);
        assert_eq!(owners.len(), rules.len());
        assert!(owners.iter().all(|&o| o < 4));
        // Both AA rules land on AA's owner.
        let aa = owner_of(camus_lang::symbol::encode_symbol("AA", 64), 4);
        assert_eq!(owners[0], aa);
        assert_eq!(owners[4], aa);
        // Deterministic recomputation.
        assert_eq!(owners, rule_owners(&rules, "ev.sym", 64, 4));
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let pipeline = compile(RULES);
        assert!(PartitionPlan::compute(&pipeline, "ev.nope", 2).is_err());
        assert!(PartitionPlan::compute(&pipeline, "ev.sym", 0).is_err());
        assert!(PartitionPlan::compute(&pipeline, "ev.sym", 65).is_err());
        assert!(PartitionPlan::compute_subset(&pipeline, "ev.sym", 4, 0).is_err());
    }

    #[test]
    fn subset_plan_keeps_survivors_stable_and_forwards_like_big_switch() {
        let pipeline = compile(RULES);
        let leaves = 4;
        let live_mask = 0b1011u64; // leaf 2 is dead
        let plan = PartitionPlan::compute_subset(&pipeline, "ev.sym", leaves, live_mask).unwrap();
        assert_eq!(plan.live_mask, live_mask);
        assert_eq!(plan.leaf_entries(2), 0, "dead slot must hold nothing");
        for a in &plan.assignment {
            for &m in &a.masks {
                assert_ne!(m, 0, "cover: entry lost in failover");
                assert_eq!(m & !live_mask, 0, "entry placed on a dead leaf");
            }
        }
        // Symbols whose primary owner survives never move.
        for v in 0..512u64 {
            let primary = owner_of(v, leaves);
            let sub = owner_in_subset(v, leaves, live_mask);
            assert_ne!(sub, 2, "routed to the dead leaf");
            if live_mask & (1 << primary) != 0 {
                assert_eq!(sub, primary, "survivor shard moved");
            }
        }
        // Failover routing + slices ≡ big switch.
        let mut slices = plan.slices(&pipeline);
        let mut big = pipeline.clone();
        for sym in ["AA", "BB", "CC", "ZZ", "QQ"] {
            for val in [0u32, 3, 20, 60, 100] {
                let ev = event(sym, val);
                let key = camus_lang::symbol::encode_symbol(sym, 64);
                let leaf = owner_in_subset(key, leaves, live_mask);
                assert_eq!(
                    ports(&mut slices[leaf], &ev),
                    ports(&mut big, &ev),
                    "sym={sym} val={val}"
                );
            }
        }
        // Full-mask subset is exactly the healthy plan.
        let full = PartitionPlan::compute(&pipeline, "ev.sym", leaves).unwrap();
        let sub_full =
            PartitionPlan::compute_subset(&pipeline, "ev.sym", leaves, full_mask(leaves)).unwrap();
        assert_eq!(full, sub_full);
    }
}
