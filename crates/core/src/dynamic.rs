//! Dynamic compilation (§3.2): rules → BDD → table entries.
//!
//! This is the paper's Algorithm 1. The resolved conjunctions are
//! inserted into a multi-terminal BDD; the BDD is sliced into per-field
//! components; every In→Out path of every component becomes one
//! match-action entry `(entry state, field constraint) → next state`,
//! and every reachable terminal becomes a leaf-table entry mapping its
//! state to the merged action set — unicast, a multicast group
//! (allocated here, deduplicated by port set), register updates, or
//! drop.
//!
//! ## Sharded construction
//!
//! BDD construction dominates compile time at large rule counts, so it
//! is parallelized: the normalized conjunctions are partitioned into
//! fixed-size *logical shards* ([`SHARD_CHUNK`] conjunctions each),
//! each shard builds its own diagram, and the shards are folded
//! together with [`camus_bdd::Bdd::union_with`] along a fixed pairwise
//! merge tree. Both the partition and the merge tree depend only on
//! the rule count — never on the worker count `K` — so every store
//! operation is the same at any `K`; the workers merely execute nodes
//! of a pinned DAG. That, plus the deterministic renumbering of
//! [`camus_bdd::Bdd::canonical_copy`], is what makes the emitted
//! tables, multicast groups and statistics bit-identical regardless of
//! `K` (pruned union itself is *not* confluent — see [`SHARD_CHUNK`]).
//! Table-entry translation (phase 2 of [`emit_tables`]) also fans out
//! across field components.

use std::collections::HashMap;

use camus_bdd::pred::{ActionId, Pred};
use camus_bdd::slice::{component_paths, slice};
use camus_bdd::store::EMPTY_ACTIONS;
use camus_bdd::{Bdd, NodeRef};
use camus_pipeline::multicast::{MulticastTable, PortId};
use camus_pipeline::table::{ActionOp, Entry, Key, MatchKind, MatchValue, RegOp, Table};
use camus_telemetry::{SpanKind, SpanSet, SpanTimer};

use crate::error::CompileError;
use crate::resolve::{CounterFunc, Resolved, RuleAction};
use crate::statics::StaticPipeline;

/// Summary statistics of one dynamic compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileStats {
    /// Source rules (before normalization).
    pub rules_in: usize,
    /// Normalized conjunctions inserted (including synthesized
    /// aggregate-observe rules).
    pub conjunctions: usize,
    /// Conjunctions rejected as unsatisfiable.
    pub unsat_conjunctions: usize,
    /// Reachable BDD nodes after construction.
    pub bdd_nodes: usize,
    /// Distinct reachable terminal action sets.
    pub bdd_terminals: usize,
    /// Logical entries per table, in pipeline order.
    pub table_entries: Vec<(String, usize)>,
    /// Total logical entries across all tables — the paper's Figure 5
    /// metric.
    pub total_entries: usize,
    /// Multicast groups allocated — the paper's companion metric
    /// ("21,401 table entries and 198 multicast groups").
    pub mcast_groups: usize,
    /// Distinct pipeline states (BDD entry nodes + terminals).
    pub states: usize,
    /// Worker threads the BDD build ran on (1 = sequential). The
    /// output is bit-identical at any worker count; this records the
    /// schedule.
    pub shards: usize,
    /// Nodes allocated in the final build store before canonical
    /// renumbering — a proxy for the build's peak working set
    /// (`bdd_nodes` counts reachable nodes after renumbering).
    pub allocated_nodes: usize,
    /// Cumulative apply-memo hits across all shards and merges.
    pub memo_hits: u64,
    /// Cumulative apply-memo misses across all shards and merges.
    pub memo_misses: u64,
}

/// The dynamic half of a compiled program.
#[derive(Debug)]
pub struct DynamicProgram {
    /// Match-action tables in pipeline order (per-field tables then the
    /// leaf table).
    pub tables: Vec<Table>,
    /// Multicast groups referenced by leaf entries.
    pub mcast: MulticastTable,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// The BDD, kept for introspection (DOT export, ablations).
    pub bdd: Bdd,
    /// Wall-clock timing of the compile phases (shard build, merge,
    /// emission). Deliberately *not* part of [`CompileStats`]: stats
    /// are asserted bit-identical across shard counts, timings are not.
    pub spans: SpanSet,
}

impl DynamicProgram {
    /// Renders the control-plane rules as human-readable `table_add`
    /// lines (the second compiler output of Fig. 6).
    pub fn render_control_plane(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for t in &self.tables {
            for e in t.entries() {
                let _ = write!(s, "table_add {} prio={}", t.name, e.priority);
                for (k, m) in t.keys.iter().zip(&e.matches) {
                    let _ = match m {
                        MatchValue::Exact(v) => write!(s, " k{}={v}", k.field.0),
                        MatchValue::Range { lo, hi } => write!(s, " k{}={lo}..{hi}", k.field.0),
                        MatchValue::Ternary { value, mask } => {
                            write!(s, " k{}={value:#x}&&&{mask:#x}", k.field.0)
                        }
                        MatchValue::Lpm { value, prefix_len } => {
                            write!(s, " k{}={value:#x}/{prefix_len}", k.field.0)
                        }
                        MatchValue::Any => write!(s, " k{}=*", k.field.0),
                    };
                }
                let _ = write!(s, " =>");
                for op in &e.ops {
                    let _ = match op {
                        ActionOp::SetField(f, v) => write!(s, " set f{}={v}", f.0),
                        ActionOp::Forward(p) => write!(s, " fwd({})", p.0),
                        ActionOp::Multicast(g) => write!(s, " mcast({})", g.0),
                        ActionOp::Drop => write!(s, " drop"),
                        ActionOp::Register { slot, .. } => write!(s, " reg[{slot}]"),
                    };
                }
                let _ = writeln!(s);
            }
        }
        s
    }
}

/// Persistent emission state: action interning, pipeline-state
/// numbering, and multicast-group allocation. A full compilation uses a
/// fresh instance; the incremental compiler keeps one alive so that
/// unchanged BDD nodes keep their state ids and unchanged port sets
/// keep their group ids — maximizing table-entry reuse across updates
/// (§3, "state updates can benefit from table entry re-use").
#[derive(Debug, Default)]
pub struct EmissionState {
    pub(crate) actions: Vec<RuleAction>,
    pub(crate) action_ids: HashMap<RuleAction, ActionId>,
    pub(crate) state_of: HashMap<NodeRef, u64>,
    pub(crate) next_state: u64,
    pub(crate) mcast: MulticastTable,
    pub(crate) group_of: HashMap<Vec<PortId>, camus_pipeline::GroupId>,
}

impl EmissionState {
    /// Creates fresh emission state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a rule action, returning its stable id.
    pub(crate) fn intern_action(&mut self, a: &RuleAction) -> ActionId {
        if let Some(&id) = self.action_ids.get(a) {
            return id;
        }
        let id = ActionId(self.actions.len() as u32);
        self.actions.push(a.clone());
        self.action_ids.insert(a.clone(), id);
        id
    }

    fn state(&mut self, r: NodeRef) -> u64 {
        *self.state_of.entry(r).or_insert_with(|| {
            let s = self.next_state;
            self.next_state += 1;
            s
        })
    }
}

/// Translates one field component's paths into its match-action table.
/// Reads — but never mutates — the emission state, so components can be
/// translated concurrently once all states are assigned.
fn field_table(
    bdd: &Bdd,
    statics: &StaticPipeline,
    es: &EmissionState,
    comp: &camus_bdd::slice::Component,
    paths: &[camus_bdd::slice::CompPath],
) -> Result<Table, CompileError> {
    let info = bdd.field_info(comp.field);
    let phv = statics.field_phv[comp.field.0 as usize];
    let kind = if info.exact {
        MatchKind::Exact
    } else {
        MatchKind::Range
    };
    let mut table = Table::new(
        format!("t_{}", info.name.replace('.', "_")),
        vec![
            Key {
                field: statics.state_meta,
                kind: MatchKind::Exact,
                bits: 32,
            },
            Key {
                field: phv,
                kind,
                bits: info.bits,
            },
        ],
        vec![], // miss: keep state (pass-through for skipped components)
    );
    let field_max = info.max_value();
    for p in paths {
        let m = if let Some(v) = p.pinned() {
            MatchValue::Exact(v)
        } else if p.is_wildcard(field_max) {
            MatchValue::Any
        } else if info.exact {
            // Exclusion-only constraint on an exact field: express as
            // a wildcard shadowed by the higher-priority pinned
            // entries (Figure 4's `*` rows).
            MatchValue::Any
        } else {
            MatchValue::Range {
                lo: p.ctx.lo,
                hi: p.ctx.hi,
            }
        };
        table.add_entry(Entry {
            priority: p.rank as u32,
            matches: vec![MatchValue::Exact(es.state_of[&p.entry]), m],
            ops: vec![ActionOp::SetField(statics.state_meta, es.state_of[&p.exit])],
        })?;
    }
    Ok(table)
}

/// Runs Algorithm 1 against the current BDD: slices it into per-field
/// components and emits the table chain plus the leaf table. Returns
/// the tables, the pipeline's initial state (the root's id), and the
/// number of multicast groups allocated so far.
///
/// `threads` bounds the worker count for phase 2 (path → entry
/// translation); the output is identical at any value.
pub(crate) fn emit_tables(
    bdd: &Bdd,
    statics: &StaticPipeline,
    es: &mut EmissionState,
    threads: usize,
) -> Result<(Vec<Table>, u64), CompileError> {
    // Phase 1 (sequential): assign pipeline states — entry nodes and
    // terminals in deterministic traversal order (stable across
    // incremental runs because the node store is append-only and
    // `state_of` persists).
    let comps = slice(bdd);
    let initial_state = es.state(bdd.root());
    let mut comp_paths = Vec::with_capacity(comps.len());
    for comp in &comps {
        for &n in &comp.in_nodes {
            es.state(n);
        }
        let paths = component_paths(bdd, comp);
        for p in &paths {
            es.state(p.exit);
        }
        comp_paths.push(paths);
    }

    // Phase 2: per-field tables. Every state is assigned by now, so the
    // translation only *reads* the emission state and field components
    // fan out across worker threads; results are scattered back by
    // component index, keeping the table order deterministic.
    let threads = threads.clamp(1, comps.len().max(1));
    let mut tables: Vec<Table> = if threads <= 1 {
        comps
            .iter()
            .zip(&comp_paths)
            .map(|(c, p)| field_table(bdd, statics, es, c, p))
            .collect::<Result<_, _>>()?
    } else {
        let es_ro: &EmissionState = es;
        let comps_ref = &comps;
        let paths_ref = &comp_paths;
        let mut slots: Vec<Option<Result<Table, CompileError>>> =
            (0..comps.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    s.spawn(move || {
                        (w..comps_ref.len())
                            .step_by(threads)
                            .map(|i| {
                                (
                                    i,
                                    field_table(bdd, statics, es_ro, &comps_ref[i], &paths_ref[i]),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("emission worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every component translated"))
            .collect::<Result<_, _>>()?
    };

    // Phase 3 (sequential): the leaf table — terminal state → merged
    // actions. Mutates the emission state (multicast-group allocation),
    // so it stays single-threaded.
    let mut leaf = Table::new(
        "t_actions",
        vec![Key {
            field: statics.state_meta,
            kind: MatchKind::Exact,
            bits: 32,
        }],
        vec![],
    );
    let mut terminals: Vec<(NodeRef, u64)> = es
        .state_of
        .iter()
        .filter(|(r, _)| r.is_term())
        .map(|(&r, &s)| (r, s))
        .collect();
    terminals.sort_by_key(|&(_, s)| s);
    for (term, state) in terminals {
        let NodeRef::Term(set) = term else {
            unreachable!()
        };
        if set == EMPTY_ACTIONS {
            continue; // miss = drop
        }
        let mut ports: Vec<PortId> = Vec::new();
        let mut ops: Vec<ActionOp> = Vec::new();
        let mut explicit_drop = false;
        for &aid in bdd.actions(set) {
            match &es.actions[aid.0 as usize] {
                RuleAction::Fwd(ps) => ports.extend(ps.iter().map(|&p| PortId(p))),
                RuleAction::Drop => explicit_drop = true,
                RuleAction::ObserveAgg { agg_field } => {
                    let slot = statics.reg_slot[agg_field];
                    let op = match statics.observe_src[agg_field] {
                        Some(src) => RegOp::Observe(src),
                        None => RegOp::Increment,
                    };
                    ops.push(ActionOp::Register { slot, op });
                }
                RuleAction::CounterUpdate {
                    counter_field,
                    func,
                } => {
                    let slot = statics.reg_slot[counter_field];
                    let op = match func {
                        CounterFunc::Increment => RegOp::Increment,
                        CounterFunc::AddField(f) => RegOp::Observe(statics.field_phv[f.0 as usize]),
                        CounterFunc::SetConst(v) => RegOp::SetConst(*v),
                        CounterFunc::SetField(f) => {
                            RegOp::SetField(statics.field_phv[f.0 as usize])
                        }
                    };
                    ops.push(ActionOp::Register { slot, op });
                }
            }
        }
        ports.sort_unstable();
        ports.dedup();
        match ports.len() {
            0 => {
                if explicit_drop {
                    ops.push(ActionOp::Drop);
                }
            }
            1 => ops.insert(0, ActionOp::Forward(ports[0])),
            _ => {
                let mcast = &mut es.mcast;
                let gid = *es
                    .group_of
                    .entry(ports.clone())
                    .or_insert_with(|| mcast.allocate(ports.clone()));
                ops.insert(0, ActionOp::Multicast(gid));
            }
        }
        if ops.is_empty() {
            continue; // pure no-op terminal
        }
        leaf.add_entry(Entry {
            priority: 0,
            matches: vec![MatchValue::Exact(state)],
            ops,
        })?;
    }
    tables.push(leaf);
    Ok((tables, initial_state))
}

/// Resolves a worker-thread request: 0 means one worker per available
/// core; never more workers than rules, never fewer than one.
fn resolve_shards(requested: usize, rules: usize) -> usize {
    let k = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    k.clamp(1, rules.max(1))
}

/// Conjunctions per logical shard.
///
/// The rule list is partitioned into fixed-size chunks — a function of
/// the pool size alone, never of the worker count. Union under the
/// semantic-pruning reduction is *not* confluent: merging the same
/// rules along different trees can leave different (semantically
/// equivalent) residue on unsatisfiable paths, which no
/// structure-preserving renumbering can erase. Pinning the partition
/// and the merge tree pins the entire sequence of store operations, so
/// the worker count only decides which thread executes each build or
/// merge — and the output is bit-identical at any thread count by
/// construction.
const SHARD_CHUNK: usize = 512;

/// Inserts a slice of conjunctions into a (shard) BDD, counting
/// unsatisfiable ones. Satisfiability is a per-conjunction property, so
/// shard-local counts sum to the sequential total.
fn build_shard(
    mut bdd: Bdd,
    rules: &[crate::resolve::ResolvedConj],
    rule_actions: &[Vec<ActionId>],
) -> Result<(Bdd, usize), CompileError> {
    let mut unsat = 0usize;
    for (conj, ids) in rules.iter().zip(rule_actions) {
        if !bdd.add_rule(&conj.literals, ids)? {
            unsat += 1;
        }
    }
    Ok((bdd, unsat))
}

/// A built shard: its diagram and its unsatisfiable-conjunction count.
type BuiltShard = (Bdd, usize);

/// Builds the rule BDD over the fixed logical-shard DAG on `threads`
/// worker threads and canonicalizes the result. Returns the canonical
/// diagram, the unsat-conjunction count, and the node allocation of the
/// build store before renumbering.
///
/// Logical shards are contiguous [`SHARD_CHUNK`]-sized rule ranges and
/// merge along a fixed pairwise tree (pairs per level in order; an odd
/// trailing diagram passes through to the next level). Both the
/// partition and the tree depend only on the rule count, so every
/// build and merge operation — and therefore the final store — is
/// identical at any `threads`; workers merely execute DAG nodes.
/// [`Bdd::canonical_copy`] then drops garbage from intermediate merges
/// and renumbers vertices deterministically.
fn build_sharded(
    proto: Bdd,
    rules: &[crate::resolve::ResolvedConj],
    rule_actions: &[Vec<ActionId>],
    threads: usize,
    spans: &mut SpanSet,
) -> Result<(Bdd, usize, usize), CompileError> {
    let build_timer = SpanTimer::start();
    let bounds: Vec<(usize, usize)> = (0..rules.len())
        .step_by(SHARD_CHUNK)
        .map(|lo| (lo, (lo + SHARD_CHUNK).min(rules.len())))
        .collect();

    // Phase 1: build one diagram per logical shard.
    let mut level: Vec<BuiltShard> = if bounds.is_empty() {
        vec![(proto, 0)]
    } else if threads <= 1 || bounds.len() == 1 {
        let mut out = Vec::with_capacity(bounds.len());
        for &(lo, hi) in &bounds {
            out.push(build_shard(
                proto.clone_empty(),
                &rules[lo..hi],
                &rule_actions[lo..hi],
            )?);
        }
        out
    } else {
        let workers = threads.min(bounds.len());
        std::thread::scope(|s| {
            let bounds = &bounds;
            let proto = &proto;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for i in (w..bounds.len()).step_by(workers) {
                            let (lo, hi) = bounds[i];
                            let built = build_shard(
                                proto.clone_empty(),
                                &rules[lo..hi],
                                &rule_actions[lo..hi],
                            );
                            out.push((i, built));
                        }
                        out
                    })
                })
                .collect();
            let mut slots: Vec<Option<BuiltShard>> = bounds.iter().map(|_| None).collect();
            for h in handles {
                for (i, built) in h.join().expect("shard build panicked") {
                    slots[i] = Some(built?);
                }
            }
            Ok::<_, CompileError>(
                slots
                    .into_iter()
                    .map(|s| s.expect("every logical shard built"))
                    .collect(),
            )
        })?
    };
    build_timer.stop_into(spans, SpanKind::ShardBuild);

    // Phase 2: fold the fixed pairwise merge tree, level by level.
    let merge_timer = SpanTimer::start();
    while level.len() > 1 {
        let odd = if level.len() % 2 == 1 {
            level.pop()
        } else {
            None
        };
        let mut pairs = Vec::with_capacity(level.len() / 2);
        let mut it = level.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            pairs.push((a, b));
        }
        level = if threads <= 1 || pairs.len() == 1 {
            pairs
                .into_iter()
                .map(|((mut a, ua), (b, ub))| {
                    a.union_with(&b);
                    (a, ua + ub)
                })
                .collect()
        } else {
            let workers = threads.min(pairs.len());
            let per_chunk = pairs.len().div_ceil(workers);
            let mut slots: Vec<Option<BuiltShard>> = pairs.iter().map(|_| None).collect();
            let mut pairs: Vec<Option<(BuiltShard, BuiltShard)>> =
                pairs.into_iter().map(Some).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = pairs
                    .chunks_mut(per_chunk)
                    .enumerate()
                    .map(|(c, chunk)| {
                        s.spawn(move || {
                            chunk
                                .iter_mut()
                                .enumerate()
                                .map(|(j, slot)| {
                                    let ((mut a, ua), (b, ub)) =
                                        slot.take().expect("pair taken once");
                                    a.union_with(&b);
                                    (c, j, (a, ua + ub))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (c, j, merged) in h.join().expect("merge worker panicked") {
                        slots[c * per_chunk + j] = Some(merged);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every pair merged"))
                .collect()
        };
        level.extend(odd);
    }
    let (merged, unsat) = level.pop().expect("at least one shard");
    let allocated = merged.node_count();
    let canonical = merged.canonical_copy();
    merge_timer.stop_into(spans, SpanKind::ShardMerge);
    Ok((canonical, unsat, allocated))
}

/// Runs dynamic compilation against a static pipeline.
///
/// `shards` controls the worker-thread count of the parallel BDD build
/// (0 = one worker per available core); the emitted program is
/// bit-identical at any value.
pub fn compile_dynamic(
    resolved: &Resolved,
    statics: &StaticPipeline,
    rules_in: usize,
    semantic_pruning: bool,
    shards: usize,
) -> Result<DynamicProgram, CompileError> {
    let mut es = EmissionState::new();

    // The full predicate alphabet — every shard shares one variable
    // order, the precondition for merging.
    let alphabet: Vec<Pred> = resolved
        .rules
        .iter()
        .flat_map(|r| r.literals.iter().map(|(p, _)| *p))
        .collect();
    let mut proto = Bdd::new(resolved.fields.infos.clone(), alphabet)?;
    proto.set_semantic_pruning(semantic_pruning);

    // Intern actions sequentially, before sharding, so action ids are a
    // function of rule order alone.
    let rule_actions: Vec<Vec<ActionId>> = resolved
        .rules
        .iter()
        .map(|conj| conj.actions.iter().map(|a| es.intern_action(a)).collect())
        .collect();

    let shards = resolve_shards(shards, resolved.rules.len());
    let mut spans = SpanSet::new();
    let (bdd, unsat, allocated_nodes) =
        build_sharded(proto, &resolved.rules, &rule_actions, shards, &mut spans)?;

    let emit_timer = SpanTimer::start();
    let (tables, initial_state) = emit_tables(&bdd, statics, &mut es, shards)?;
    emit_timer.stop_into(&mut spans, SpanKind::EmitTables);
    debug_assert_eq!(initial_state, 0, "fresh emission numbers the root first");

    let table_entries: Vec<(String, usize)> =
        tables.iter().map(|t| (t.name.clone(), t.len())).collect();
    let total_entries = table_entries.iter().map(|(_, n)| n).sum();
    let bdd_stats = bdd.stats();
    let (memo_hits, memo_misses) = bdd.memo_stats();
    let stats = CompileStats {
        rules_in,
        conjunctions: resolved.rules.len(),
        unsat_conjunctions: unsat,
        bdd_nodes: bdd_stats.reachable_nodes,
        bdd_terminals: bdd_stats.reachable_terminals,
        table_entries,
        total_entries,
        mcast_groups: es.mcast.len(),
        states: es.next_state as usize,
        shards,
        allocated_nodes,
        memo_hits,
        memo_misses,
    };
    Ok(DynamicProgram {
        tables,
        mcast: es.mcast,
        stats,
        bdd,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{resolve, ResolveOptions};
    use crate::statics::{build_static, Encap};
    use camus_bdd::order::OrderHeuristic;
    use camus_lang::{parse_program, parse_spec};

    fn compile(src: &str) -> (DynamicProgram, StaticPipeline) {
        let spec = parse_spec(camus_lang::spec::ITCH_SPEC).unwrap();
        let rules = parse_program(src).unwrap();
        let opts = ResolveOptions {
            heuristic: OrderHeuristic::SpecOrder,
            ..Default::default()
        };
        let resolved = resolve(&spec, &rules, &opts).unwrap();
        let statics = build_static(&spec, &resolved.fields, &Encap::Raw).unwrap();
        let dynp = compile_dynamic(&resolved, &statics, rules.len(), true, 0).unwrap();
        (dynp, statics)
    }

    /// The paper's Figure 3/4 example: three rules over shares and
    /// stock compile to a Shares table, a Stock table and a Leaf table.
    #[test]
    fn figure4_tables() {
        let (dynp, _) = compile(
            "shares < 60 and stock == AAPL : fwd(1)\n\
             stock == AAPL : fwd(2)\n\
             shares > 100 and stock == MSFT : fwd(3)",
        );
        assert_eq!(dynp.tables.len(), 3);
        assert_eq!(dynp.tables[0].name, "t_add_order_shares");
        assert_eq!(dynp.tables[1].name, "t_add_order_stock");
        assert_eq!(dynp.tables[2].name, "t_actions");
        // Shares: 3 paths (Fig. 4 rows). Stock: AAPL/MSFT/exclusion rows.
        assert_eq!(dynp.tables[0].len(), 3);
        assert!(dynp.tables[1].len() >= 3);
        // fwd(1,2) merged into one multicast group.
        assert_eq!(dynp.stats.mcast_groups, 1);
        assert!(dynp.stats.total_entries >= 9);
    }

    #[test]
    fn stats_count_rules_and_states() {
        let (dynp, _) = compile("stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)");
        assert_eq!(dynp.stats.rules_in, 2);
        assert_eq!(dynp.stats.conjunctions, 2);
        assert_eq!(dynp.stats.unsat_conjunctions, 0);
        assert!(dynp.stats.states >= 3);
        assert_eq!(dynp.stats.mcast_groups, 0); // unicast only
    }

    #[test]
    fn unsat_conjunctions_are_counted() {
        let (dynp, _) = compile("shares < 10 and shares > 20 : fwd(1)\nstock == A : fwd(2)");
        assert_eq!(dynp.stats.unsat_conjunctions, 1);
    }

    #[test]
    fn multicast_groups_dedupe_port_sets() {
        let (dynp, _) = compile(
            "stock == GOOGL : fwd(1,2)\n\
             stock == MSFT : fwd(1,2)\n\
             stock == ORCL : fwd(3,4)",
        );
        assert_eq!(dynp.stats.mcast_groups, 2);
    }

    #[test]
    fn empty_rule_set_compiles_to_empty_leaf() {
        let (dynp, _) = compile("# nothing\n");
        assert_eq!(dynp.tables.len(), 1);
        assert_eq!(dynp.tables[0].len(), 0);
        assert_eq!(dynp.stats.total_entries, 0);
    }

    #[test]
    fn control_plane_rendering_mentions_tables() {
        let (dynp, _) = compile("stock == GOOGL and price > 100 : fwd(1)");
        let cp = dynp.render_control_plane();
        assert!(cp.contains("table_add t_add_order_price"));
        assert!(cp.contains("table_add t_actions"));
        assert!(cp.contains("fwd(1)"));
    }

    #[test]
    fn register_ops_link_to_slots() {
        let (dynp, statics) = compile("stock == GOOGL : fwd(1); my_counter <- incr()");
        assert_eq!(statics.registers.len(), 1);
        let leaf = dynp.tables.last().unwrap();
        let has_reg = leaf.entries().any(|e| {
            e.ops
                .iter()
                .any(|op| matches!(op, ActionOp::Register { .. }))
        });
        assert!(has_reg);
    }
}
