//! `camusc` — the Camus compiler as a command-line tool (Fig. 6's
//! compiler box).
//!
//! ```text
//! camusc --spec app.p4q --rules subs.camus [options]
//!
//!   --spec FILE         message-format spec (P4 header + annotations)
//!   --rules FILE        subscription rules, one per line
//!   --encap raw|mold    packet encapsulation   [default: mold]
//!   --select FIELD=N    message-type selector for mold (e.g. msg_type=65)
//!   --order H           spec-order|freq-desc|distinct-asc|exact-first
//!   --compress BITS     low-resolution domain mapping
//!   --asic 32|64        Tofino model            [default: 32]
//!   --out DIR           write artifacts         [default: ./camus-out]
//!   --check             compile only; print the report, write nothing
//! ```
//!
//! Writes `pipeline.p4` (P4-14), `pipeline16.p4` (P4-16/v1model),
//! `control_plane.txt`, `bdd.dot` and `report.txt` into the output
//! directory.

use std::fs;
use std::path::PathBuf;
use std::process::exit;

use camus_bdd::order::OrderHeuristic;
use camus_core::{Compiler, CompilerOptions, Encap};
use camus_lang::{parse_program, parse_spec};
use camus_pipeline::resources::AsicModel;

struct Args {
    spec: PathBuf,
    rules: PathBuf,
    encap: Encap,
    order: OrderHeuristic,
    compress: Option<u32>,
    asic: AsicModel,
    out: PathBuf,
    check: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("camusc: {msg}");
    eprintln!(
        "usage: camusc --spec FILE --rules FILE [--encap raw|mold] [--select FIELD=N]\n\
         \t[--order spec-order|freq-desc|distinct-asc|exact-first] [--compress BITS]\n\
         \t[--asic 32|64] [--out DIR] [--check]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut spec = None;
    let mut rules = None;
    let mut encap_kind = "mold".to_string();
    let mut select: Option<(String, u64)> = None;
    let mut order = OrderHeuristic::ExactFirst;
    let mut compress = None;
    let mut asic = AsicModel::tofino32();
    let mut out = PathBuf::from("camus-out");
    let mut check = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--spec" => spec = Some(PathBuf::from(val("--spec"))),
            "--rules" => rules = Some(PathBuf::from(val("--rules"))),
            "--encap" => encap_kind = val("--encap"),
            "--select" => {
                let v = val("--select");
                let (f, n) = v
                    .split_once('=')
                    .unwrap_or_else(|| usage("--select wants FIELD=N"));
                let n: u64 = n
                    .parse()
                    .unwrap_or_else(|_| usage("--select value must be a number"));
                select = Some((f.to_string(), n));
            }
            "--order" => {
                order = match val("--order").as_str() {
                    "spec-order" => OrderHeuristic::SpecOrder,
                    "freq-desc" => OrderHeuristic::FrequencyDescending,
                    "distinct-asc" => OrderHeuristic::DistinctValuesAscending,
                    "exact-first" => OrderHeuristic::ExactFirst,
                    other => usage(&format!("unknown heuristic `{other}`")),
                }
            }
            "--compress" => {
                compress = Some(
                    val("--compress")
                        .parse()
                        .unwrap_or_else(|_| usage("--compress BITS")),
                )
            }
            "--asic" => {
                asic = match val("--asic").as_str() {
                    "32" => AsicModel::tofino32(),
                    "64" => AsicModel::tofino64(),
                    other => usage(&format!("unknown ASIC `{other}`")),
                }
            }
            "--out" => out = PathBuf::from(val("--out")),
            "--check" => check = true,
            "-h" | "--help" => usage("help"),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let encap = match encap_kind.as_str() {
        "raw" => Encap::Raw,
        "mold" => Encap::EthIpUdpMold {
            message_select: select,
        },
        other => usage(&format!("unknown encapsulation `{other}`")),
    };
    Args {
        spec: spec.unwrap_or_else(|| usage("--spec is required")),
        rules: rules.unwrap_or_else(|| usage("--rules is required")),
        encap,
        order,
        compress,
        asic,
        out,
        check,
    }
}

fn main() {
    let args = parse_args();
    let spec_src = fs::read_to_string(&args.spec).unwrap_or_else(|e| {
        eprintln!("camusc: cannot read {}: {e}", args.spec.display());
        exit(1);
    });
    let rules_src = fs::read_to_string(&args.rules).unwrap_or_else(|e| {
        eprintln!("camusc: cannot read {}: {e}", args.rules.display());
        exit(1);
    });

    let spec = parse_spec(&spec_src).unwrap_or_else(|e| {
        eprintln!("camusc: {}: {e}", args.spec.display());
        exit(1);
    });
    let rules = parse_program(&rules_src).unwrap_or_else(|e| {
        eprintln!("camusc: {}: {e}", args.rules.display());
        exit(1);
    });

    let options = CompilerOptions {
        encap: args.encap,
        heuristic: args.order,
        compress_bits: args.compress,
        asic: args.asic,
        ..CompilerOptions::default()
    };
    let compiler = Compiler::new(spec, options).unwrap_or_else(|e| {
        eprintln!("camusc: {e}");
        exit(1);
    });
    let t = std::time::Instant::now();
    let prog = compiler.compile(&rules).unwrap_or_else(|e| {
        eprintln!("camusc: {e}");
        exit(1);
    });
    let elapsed = t.elapsed();

    let mut report = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        report,
        "camusc: compiled {} rules in {elapsed:?}",
        rules.len()
    );
    let _ = writeln!(report, "  conjunctions:     {}", prog.stats.conjunctions);
    let _ = writeln!(
        report,
        "  unsatisfiable:    {}",
        prog.stats.unsat_conjunctions
    );
    let _ = writeln!(report, "  BDD nodes:        {}", prog.stats.bdd_nodes);
    let _ = writeln!(report, "  pipeline states:  {}", prog.stats.states);
    let _ = writeln!(report, "  multicast groups: {}", prog.stats.mcast_groups);
    let _ = writeln!(report, "  table entries:");
    for (name, n) in &prog.stats.table_entries {
        let _ = writeln!(report, "    {name:<28} {n}");
    }
    let _ = writeln!(
        report,
        "  placement:        {} — {} stages, {} SRAM entries, {} TCAM slices{}",
        prog.placement.model.name,
        prog.placement.stages_used,
        prog.placement.sram_entries,
        prog.placement.tcam_slices,
        match &prog.placement.failure {
            None => ", fits".to_string(),
            Some(f) => format!(", DOES NOT FIT: {f}"),
        }
    );
    print!("{report}");

    if !prog.placement.fits() {
        exit(3);
    }
    if args.check {
        return;
    }

    if let Err(e) = fs::create_dir_all(&args.out) {
        eprintln!("camusc: cannot create {}: {e}", args.out.display());
        exit(1);
    }
    let write = |name: &str, contents: &str| {
        let p = args.out.join(name);
        if let Err(e) = fs::write(&p, contents) {
            eprintln!("camusc: cannot write {}: {e}", p.display());
            exit(1);
        }
        println!("wrote {}", p.display());
    };
    write("pipeline.p4", &prog.p4_source);
    write("pipeline16.p4", &prog.p4_16_source);
    write("control_plane.txt", &prog.control_plane);
    write("bdd.dot", &prog.bdd.to_dot("camus"));
    write("report.txt", &report);
}
