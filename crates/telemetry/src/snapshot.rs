//! Per-shard data-plane telemetry and the merged, versioned snapshot.
//!
//! [`DataPlaneTelemetry`] is what one engine worker (or the sequential
//! pipeline) owns privately: batch/packet counters plus four latency
//! histograms. It is heap-allocated exactly once (inside a `Box` on
//! `ExecState`), every `record_*` call is fixed-cost array arithmetic,
//! and shards never contend — the engine merges at `finish()` exactly
//! like it merges `ExecStats`.
//!
//! Stage timing is *sampled*: every `2^sample_shift`-th packet gets
//! per-stage `Instant` reads (parse / match / mcast), while batch
//! latency is always recorded (two clock reads per batch). Sampling is
//! what keeps instrumentation under the 5 % throughput budget; the
//! counters, by contrast, are exact and trace-deterministic.
//!
//! [`TelemetrySnapshot`] is the merged cross-shard view the engine
//! attaches to `EngineReport` and the benches serialize to
//! `results/TELEMETRY_engine.json` (schema version [`SNAPSHOT_VERSION`]).

use crate::hist::Histogram;
use crate::span::SpanSet;

/// Schema version stamped into every exported snapshot. Bump on any
/// breaking change to the JSON layout so `ci/validate_bench.py` can
/// reject stale readers.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Unit shift for the batch histogram: batches take µs–ms, so bucket
/// in 32 ns units to extend range (precise to ~3.7 ms, caps ~137 s).
const BATCH_UNIT_SHIFT: u32 = 5;

/// One worker shard's private telemetry. No locks, no atomics, no
/// allocation after construction.
#[derive(Debug, Clone)]
pub struct DataPlaneTelemetry {
    /// `seq & sample_mask == 0` selects the sampled packets.
    sample_mask: u64,
    /// Monotone per-shard packet sequence (drives sampling only; the
    /// authoritative packet count lives in `ExecStats`).
    seq: u64,
    /// Batches processed through `process_batch`.
    pub batches: u64,
    /// Packets that received per-stage timing.
    pub sampled_packets: u64,
    /// Whole-batch latency (always recorded; 32 ns buckets).
    pub batch_ns: Histogram,
    /// Sampled per-packet parse latency (1 ns buckets).
    pub parse_ns: Histogram,
    /// Sampled per-packet match/action latency (1 ns buckets).
    pub match_ns: Histogram,
    /// Sampled per-packet multicast port-union latency (1 ns buckets).
    pub mcast_ns: Histogram,
    /// Decision-cache hits (messages answered without running the
    /// table chain). Folded in from the worker's cache at harvest
    /// time, not on the packet path.
    pub decision_cache_hits: u64,
    /// Decision-cache misses (messages that evaluated the full chain).
    pub decision_cache_misses: u64,
    /// Decision-cache evictions (direct-mapped conflicts).
    pub decision_cache_evictions: u64,
    /// Producer-side spins while a worker's ingress ring was full
    /// (backpressure on submit).
    pub ring_full_spins: u64,
    /// Consumer-side spins while a worker's ingress ring was empty
    /// (worker waiting for batches).
    pub ring_empty_spins: u64,
}

impl DataPlaneTelemetry {
    /// Creates an empty record that samples every `2^sample_shift`-th
    /// packet for stage timing (`sample_shift = 0` samples every one).
    pub fn new(sample_shift: u32) -> Self {
        DataPlaneTelemetry {
            sample_mask: (1u64 << sample_shift.min(63)) - 1,
            seq: 0,
            batches: 0,
            sampled_packets: 0,
            batch_ns: Histogram::with_unit_shift(BATCH_UNIT_SHIFT),
            parse_ns: Histogram::new(),
            match_ns: Histogram::new(),
            mcast_ns: Histogram::new(),
            decision_cache_hits: 0,
            decision_cache_misses: 0,
            decision_cache_evictions: 0,
            ring_full_spins: 0,
            ring_empty_spins: 0,
        }
    }

    /// Folds hot-path counters (decision cache, ring spins) into the
    /// record. Called once per worker at harvest time — the cache and
    /// ring keep their own local counters on the packet path.
    pub fn add_hotpath(
        &mut self,
        cache_hits: u64,
        cache_misses: u64,
        cache_evictions: u64,
        full_spins: u64,
        empty_spins: u64,
    ) {
        self.decision_cache_hits += cache_hits;
        self.decision_cache_misses += cache_misses;
        self.decision_cache_evictions += cache_evictions;
        self.ring_full_spins += full_spins;
        self.ring_empty_spins += empty_spins;
    }

    /// How many packets pass between stage samples.
    pub fn sample_interval(&self) -> u64 {
        self.sample_mask + 1
    }

    /// Advances the packet sequence; returns `true` when this packet
    /// should get per-stage timing. Call exactly once per packet.
    #[inline]
    pub fn tick(&mut self) -> bool {
        let sampled = self.seq & self.sample_mask == 0;
        self.seq = self.seq.wrapping_add(1);
        sampled
    }

    /// Records one whole-batch duration.
    #[inline]
    pub fn record_batch(&mut self, ns: u64) {
        self.batches += 1;
        self.batch_ns.record(ns);
    }

    /// Records one sampled packet's stage durations. `match_ns` covers
    /// table evaluation for every message in the packet (including
    /// multicast group expansion); `mcast_ns` is the final port-set
    /// union (sort + dedup) across those messages.
    #[inline]
    pub fn record_stages(&mut self, parse_ns: u64, match_ns: u64, mcast_ns: u64) {
        self.sampled_packets += 1;
        self.parse_ns.record(parse_ns);
        self.match_ns.record(match_ns);
        self.mcast_ns.record(mcast_ns);
    }

    /// Records a sampled packet that failed to parse (no match/mcast
    /// stages ran). Parse latency still lands in the parse histogram.
    #[inline]
    pub fn record_parse_only(&mut self, parse_ns: u64) {
        self.sampled_packets += 1;
        self.parse_ns.record(parse_ns);
    }

    /// Folds another shard's record into this one. Counter addition and
    /// lossless histogram merges — associative and commutative, so the
    /// engine can fold worker outputs in any order. An untouched
    /// record (the snapshot's empty accumulator) adopts the other
    /// side's sampling cadence, so the merged view reports the
    /// interval the shards actually ran with.
    pub fn merge(&mut self, other: &DataPlaneTelemetry) {
        if self.seq == 0 && self.batches == 0 {
            self.sample_mask = other.sample_mask;
        }
        self.seq = self.seq.wrapping_add(other.seq);
        self.batches += other.batches;
        self.sampled_packets += other.sampled_packets;
        self.batch_ns.merge(&other.batch_ns);
        self.parse_ns.merge(&other.parse_ns);
        self.match_ns.merge(&other.match_ns);
        self.mcast_ns.merge(&other.mcast_ns);
        self.decision_cache_hits += other.decision_cache_hits;
        self.decision_cache_misses += other.decision_cache_misses;
        self.decision_cache_evictions += other.decision_cache_evictions;
        self.ring_full_spins += other.ring_full_spins;
        self.ring_empty_spins += other.ring_empty_spins;
    }

    /// Resets all counters and histograms in place (sampling cadence
    /// is retained). Used when a bench wants a fresh measurement phase
    /// without reallocating.
    pub fn reset(&mut self) {
        let shift = self.sample_mask.trailing_ones();
        *self = DataPlaneTelemetry::new(shift);
    }
}

impl Default for DataPlaneTelemetry {
    /// Defaults to sampling every 16th packet — the cadence the engine
    /// uses to stay within the 5 % overhead budget.
    fn default() -> Self {
        DataPlaneTelemetry::new(4)
    }
}

/// Per-table counters, resolved to table names for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCounters {
    /// Table name as declared in the pipeline (e.g. `tbl_0`).
    pub name: String,
    /// Messages that matched a non-default entry.
    pub hits: u64,
    /// Messages that fell through to the default action.
    pub misses: u64,
}

/// Fabric-survivability counters: leaf deaths, failover epochs, the
/// retries and drops they caused, and the typed state loss they
/// admitted. Zero on a healthy node; a fabric stamps per-leaf values
/// into each leaf's snapshot and fabric-global values into a synthetic
/// `spine` node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessCounters {
    /// Leaves declared dead by the failure detector.
    pub leaf_deaths: u64,
    /// Emergency (failover) epochs committed.
    pub failover_epochs: u64,
    /// Epoch attempts retried after a transient prepare/quiesce fault.
    pub epoch_retries: u64,
    /// Packets drop-counted because their shard's owner was dead and
    /// failover had not yet committed (the degraded window).
    pub orphaned_packets: u64,
    /// Register slots whose state died with a leaf (typed
    /// `StateLoss` entries, summed over failovers).
    pub state_loss_entries: u64,
}

impl RobustnessCounters {
    /// Counter addition, for merging snapshots.
    pub fn merge(&mut self, other: &RobustnessCounters) {
        self.leaf_deaths += other.leaf_deaths;
        self.failover_epochs += other.failover_epochs;
        self.epoch_retries += other.epoch_retries;
        self.orphaned_packets += other.orphaned_packets;
        self.state_loss_entries += other.state_loss_entries;
    }

    /// Whether every counter is zero (healthy node).
    pub fn is_zero(&self) -> bool {
        *self == RobustnessCounters::default()
    }
}

/// The merged, versioned cross-shard view. Built by `Engine::finish`
/// (or directly by a bench) from per-worker [`DataPlaneTelemetry`]
/// records, the engine's control-plane [`SpanSet`], and the pipeline's
/// per-table hit counters.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Export schema version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Worker shards merged into this snapshot.
    pub workers: usize,
    /// Total packets processed (from the merged `ExecStats`).
    pub packets: u64,
    /// Merged data-plane counters and histograms.
    pub data: DataPlaneTelemetry,
    /// Merged control-plane spans.
    pub spans: SpanSet,
    /// Per-table hit/miss counters, in pipeline table order.
    pub tables: Vec<TableCounters>,
    /// Survivability counters (leaf deaths, failover epochs, retries,
    /// orphaned packets, state loss). All-zero outside a fabric.
    pub robustness: RobustnessCounters,
}

impl TelemetrySnapshot {
    /// An empty snapshot for `workers` shards.
    pub fn new(workers: usize) -> Self {
        TelemetrySnapshot {
            version: SNAPSHOT_VERSION,
            workers,
            packets: 0,
            data: DataPlaneTelemetry::default(),
            spans: SpanSet::new(),
            tables: Vec::new(),
            robustness: RobustnessCounters::default(),
        }
    }

    /// Folds one worker's data-plane record into the snapshot.
    pub fn absorb_worker(&mut self, data: &DataPlaneTelemetry) {
        self.data.merge(data);
    }

    /// Merges a whole snapshot (e.g. from a second engine run).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        debug_assert_eq!(self.version, other.version);
        self.workers = self.workers.max(other.workers);
        self.packets += other.packets;
        self.data.merge(&other.data);
        self.spans.merge(&other.spans);
        self.robustness.merge(&other.robustness);
        if self.tables.is_empty() {
            self.tables = other.tables.clone();
        } else if self.tables.len() == other.tables.len() {
            for (a, b) in self.tables.iter_mut().zip(&other.tables) {
                a.hits += b.hits;
                a.misses += b.misses;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    #[test]
    fn sampling_cadence_follows_shift() {
        let mut t = DataPlaneTelemetry::new(2);
        assert_eq!(t.sample_interval(), 4);
        let picks: Vec<bool> = (0..8).map(|_| t.tick()).collect();
        assert_eq!(
            picks,
            [true, false, false, false, true, false, false, false]
        );

        // shift 0 samples every packet.
        let mut every = DataPlaneTelemetry::new(0);
        assert!((0..4).all(|_| every.tick()));
    }

    #[test]
    fn stage_and_batch_records_land_in_histograms() {
        let mut t = DataPlaneTelemetry::new(0);
        t.record_batch(64_000);
        t.record_stages(100, 900, 40);
        t.record_parse_only(70);
        assert_eq!(t.batches, 1);
        assert_eq!(t.sampled_packets, 2);
        assert_eq!(t.parse_ns.count(), 2);
        assert_eq!(t.match_ns.count(), 1);
        assert_eq!(t.mcast_ns.count(), 1);
        assert_eq!(t.parse_ns.min(), 70);
        assert_eq!(t.parse_ns.max(), 100);
        // Batch histogram buckets in 32 ns units but reports raw ns.
        assert_eq!(t.batch_ns.max(), 64_000);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = DataPlaneTelemetry::new(0);
        let mut b = DataPlaneTelemetry::new(0);
        let mut one = DataPlaneTelemetry::new(0);
        for v in [120u64, 450, 80] {
            a.record_stages(v, v * 2, v / 2);
            one.record_stages(v, v * 2, v / 2);
        }
        for v in [900u64, 33] {
            b.record_stages(v, v * 2, v / 2);
            one.record_stages(v, v * 2, v / 2);
        }
        a.record_batch(10_000);
        one.record_batch(10_000);
        a.merge(&b);
        assert_eq!(a.sampled_packets, one.sampled_packets);
        assert_eq!(a.batches, one.batches);
        assert_eq!(a.parse_ns.sum(), one.parse_ns.sum());
        assert_eq!(a.match_ns.bucket_counts(), one.match_ns.bucket_counts());
        assert_eq!(a.parse_ns.percentile(99.0), one.parse_ns.percentile(99.0));
    }

    #[test]
    fn empty_accumulator_adopts_merged_cadence() {
        let mut worker = DataPlaneTelemetry::new(6);
        worker.tick();
        worker.record_batch(100);
        let mut snap = TelemetrySnapshot::new(1);
        snap.absorb_worker(&worker);
        assert_eq!(snap.data.sample_interval(), 64);
        // A record that has already ticked keeps its own cadence.
        let mut busy = DataPlaneTelemetry::new(2);
        busy.tick();
        busy.merge(&worker);
        assert_eq!(busy.sample_interval(), 4);
    }

    #[test]
    fn reset_clears_but_keeps_cadence() {
        let mut t = DataPlaneTelemetry::new(3);
        for _ in 0..5 {
            t.tick();
        }
        t.record_batch(500);
        t.reset();
        assert_eq!(t.sample_interval(), 8);
        assert_eq!(t.batches, 0);
        assert!(t.batch_ns.is_empty());
        assert!(t.tick(), "sequence restarts at a sample point");
    }

    #[test]
    fn hotpath_counters_merge_and_reset() {
        let mut a = DataPlaneTelemetry::new(0);
        a.add_hotpath(10, 4, 1, 100, 200);
        let mut b = DataPlaneTelemetry::new(0);
        b.add_hotpath(5, 5, 0, 7, 9);
        a.merge(&b);
        assert_eq!(a.decision_cache_hits, 15);
        assert_eq!(a.decision_cache_misses, 9);
        assert_eq!(a.decision_cache_evictions, 1);
        assert_eq!(a.ring_full_spins, 107);
        assert_eq!(a.ring_empty_spins, 209);
        a.reset();
        assert_eq!(a.decision_cache_hits, 0);
        assert_eq!(a.ring_empty_spins, 0);
    }

    #[test]
    fn snapshot_merges_tables_and_spans() {
        let mut a = TelemetrySnapshot::new(2);
        a.packets = 100;
        a.tables = vec![TableCounters {
            name: "tbl_0".into(),
            hits: 10,
            misses: 2,
        }];
        a.spans.record(SpanKind::ApplyUpdate, 1_000);

        let mut b = TelemetrySnapshot::new(4);
        b.packets = 50;
        b.tables = vec![TableCounters {
            name: "tbl_0".into(),
            hits: 5,
            misses: 1,
        }];
        b.spans.record(SpanKind::ApplyUpdate, 3_000);

        a.merge(&b);
        assert_eq!(a.version, SNAPSHOT_VERSION);
        assert_eq!(a.workers, 4);
        assert_eq!(a.packets, 150);
        assert_eq!(a.tables[0].hits, 15);
        assert_eq!(a.tables[0].misses, 3);
        assert_eq!(a.spans.get(SpanKind::ApplyUpdate).count, 2);
    }

    #[test]
    fn empty_snapshot_adopts_tables_on_merge() {
        let mut a = TelemetrySnapshot::new(1);
        let mut b = TelemetrySnapshot::new(1);
        b.tables = vec![TableCounters {
            name: "t".into(),
            hits: 7,
            misses: 0,
        }];
        a.merge(&b);
        assert_eq!(a.tables, b.tables);
    }
}
