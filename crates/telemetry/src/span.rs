//! Scoped control-plane span timers.
//!
//! The control plane is slow-path code (compiles, update application,
//! quiescence, worker supervision), so spans favour exactness over
//! compactness: every [`SpanStats`] keeps an exact count, total, min,
//! max and last duration in nanoseconds. The set of spans is a closed
//! enum — a [`SpanSet`] is a fixed array, so recording and merging are
//! allocation-free and a snapshot can be cloned onto the data-plane
//! report without touching the heap beyond the containing struct.

use std::time::Instant;

/// The closed set of instrumented control-plane operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One end-to-end `Compiler::compile` (resolve + statics + dynamic).
    Compile,
    /// Phase 1 of the sharded BDD build: per-shard diagram construction.
    ShardBuild,
    /// Phase 2: folding the pinned pairwise merge DAG (including the
    /// canonical renumbering pass).
    ShardMerge,
    /// Phase 3: slicing + table-entry emission (`emit_tables`).
    EmitTables,
    /// `Engine::apply_update`: candidate build + admission + publish.
    ApplyUpdate,
    /// `Engine::install_pipeline`: full-swap publication.
    InstallPipeline,
    /// `Engine::quiesce`: draining every in-flight batch.
    Quiesce,
    /// Respawning a dead worker (join + harvest + spawn).
    WorkerRespawn,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Compile,
        SpanKind::ShardBuild,
        SpanKind::ShardMerge,
        SpanKind::EmitTables,
        SpanKind::ApplyUpdate,
        SpanKind::InstallPipeline,
        SpanKind::Quiesce,
        SpanKind::WorkerRespawn,
    ];

    /// Stable snake_case name (used in JSON and Prometheus exports).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Compile => "compile",
            SpanKind::ShardBuild => "shard_build",
            SpanKind::ShardMerge => "shard_merge",
            SpanKind::EmitTables => "emit_tables",
            SpanKind::ApplyUpdate => "apply_update",
            SpanKind::InstallPipeline => "install_pipeline",
            SpanKind::Quiesce => "quiesce",
            SpanKind::WorkerRespawn => "worker_respawn",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Exact aggregate statistics for one span kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans (saturating).
    pub total_ns: u64,
    /// Shortest span (0 when none recorded).
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
    /// Most recent span.
    pub last_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.last_ns = ns;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.count += 1;
    }

    fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.last_ns = other.last_ns;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.count += other.count;
    }

    /// Mean duration (0.0 when none recorded).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// One [`SpanStats`] per [`SpanKind`], in a fixed array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSet {
    spans: [SpanStats; SpanKind::ALL.len()],
}

impl SpanSet {
    /// An empty set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Records one completed span of `ns` nanoseconds.
    pub fn record(&mut self, kind: SpanKind, ns: u64) {
        self.spans[kind.index()].record(ns);
    }

    /// The stats for one kind.
    pub fn get(&self, kind: SpanKind) -> &SpanStats {
        &self.spans[kind.index()]
    }

    /// Adds `other`'s spans into `self`.
    pub fn merge(&mut self, other: &SpanSet) {
        for (a, b) in self.spans.iter_mut().zip(&other.spans) {
            a.merge(b);
        }
    }

    /// Iterates the kinds that have recorded at least one span.
    pub fn recorded(&self) -> impl Iterator<Item = (SpanKind, &SpanStats)> {
        SpanKind::ALL
            .iter()
            .map(|&k| (k, self.get(k)))
            .filter(|(_, s)| s.count > 0)
    }

    /// Times `f` and records its duration under `kind`.
    pub fn time<R>(&mut self, kind: SpanKind, f: impl FnOnce() -> R) -> R {
        let timer = SpanTimer::start();
        let r = f();
        timer.stop_into(self, kind);
        r
    }
}

/// A started span. The borrow-free half of the scoped-timer pattern:
/// start before the work, `stop_into` a [`SpanSet`] after — usable
/// even when the set lives inside the struct the work mutates.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts the clock.
    pub fn start() -> Self {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stops the clock and records the duration.
    pub fn stop_into(self, set: &mut SpanSet, kind: SpanKind) {
        set.record(kind, self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_exact_extremes() {
        let mut s = SpanSet::new();
        s.record(SpanKind::Compile, 50);
        s.record(SpanKind::Compile, 10);
        s.record(SpanKind::Compile, 30);
        let c = s.get(SpanKind::Compile);
        assert_eq!(c.count, 3);
        assert_eq!(c.total_ns, 90);
        assert_eq!(c.min_ns, 10);
        assert_eq!(c.max_ns, 50);
        assert_eq!(c.last_ns, 30);
        assert!((c.mean_ns() - 30.0).abs() < 1e-9);
        // Other kinds untouched.
        assert_eq!(s.get(SpanKind::Quiesce), &SpanStats::default());
        assert_eq!(s.recorded().count(), 1);
    }

    #[test]
    fn merge_combines_like_one_stream() {
        let mut a = SpanSet::new();
        let mut b = SpanSet::new();
        a.record(SpanKind::ApplyUpdate, 100);
        b.record(SpanKind::ApplyUpdate, 20);
        b.record(SpanKind::Quiesce, 7);
        a.merge(&b);
        let u = a.get(SpanKind::ApplyUpdate);
        assert_eq!((u.count, u.total_ns, u.min_ns, u.max_ns), (2, 120, 20, 100));
        assert_eq!(a.get(SpanKind::Quiesce).count, 1);
        // Merging an empty set changes nothing.
        let snapshot = a.clone();
        a.merge(&SpanSet::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn scoped_time_records_once() {
        let mut s = SpanSet::new();
        let out = s.time(SpanKind::EmitTables, || 42);
        assert_eq!(out, 42);
        assert_eq!(s.get(SpanKind::EmitTables).count, 1);
    }
}
