//! Log-linear latency histograms: fixed 64 buckets, no locks, no heap.
//!
//! The bucketing scheme is the classic log-linear layout (HdrHistogram,
//! Go's `runtime/metrics`): values below 8 get one bucket each, and
//! every power-of-two octave above that is split into 4 sub-buckets, so
//! the worst-case relative bucket width is 25 %. Sixty-three buckets
//! cover `[0, 7 << 14)` scaled units precisely; everything larger lands
//! in the overflow bucket (index 63), whose percentile estimate is
//! clamped to the exact recorded maximum.
//!
//! A `unit_shift` divides raw values by `2^shift` before bucketing, so
//! one 64-bucket array can cover nanosecond-scale packet stages
//! (`shift = 0`, precise to ~115 µs) or batch/span durations
//! (`shift = 5`, precise to ~3.7 ms) without widening the array. Sums,
//! minima and maxima are kept on the *raw* values, so means and range
//! are exact regardless of the shift.

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 64;

/// Sub-buckets per power-of-two octave (4 → ≤25 % bucket width).
const SUB_BITS: u32 = 2;

/// Values below this get one exact bucket each.
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1); // 8

/// Maps a scaled value to its bucket index (monotone, total).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let octave = (msb - SUB_BITS - 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    (LINEAR_MAX as usize + (octave << SUB_BITS) + sub).min(BUCKETS - 1)
}

/// Inclusive lower bound (in scaled units) of bucket `i`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let rel = i - LINEAR_MAX as usize;
    let octave = (rel >> SUB_BITS) as u32;
    let sub = (rel & ((1 << SUB_BITS) - 1)) as u64;
    let msb = octave + SUB_BITS + 1;
    ((1 << SUB_BITS) + sub) << (msb - SUB_BITS)
}

/// Exclusive upper bound (in scaled units) of bucket `i`
/// (`u64::MAX` for the overflow bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower_bound(i + 1)
}

/// A fixed-size log-linear histogram. `Clone` is a flat copy; there is
/// no heap state, so construction, recording and merging never
/// allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    /// Sum of *raw* (unshifted) values.
    sum: u64,
    /// Smallest raw value recorded (`u64::MAX` when empty).
    min: u64,
    /// Largest raw value recorded.
    max: u64,
    /// Raw values are divided by `2^unit_shift` before bucketing.
    unit_shift: u32,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A histogram bucketing raw values directly (`unit_shift = 0`).
    pub fn new() -> Self {
        Histogram::with_unit_shift(0)
    }

    /// A histogram that divides raw values by `2^shift` before
    /// bucketing, trading resolution for range.
    pub fn with_unit_shift(shift: u32) -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            unit_shift: shift.min(32),
        }
    }

    /// The configured unit shift.
    pub fn unit_shift(&self) -> u32 {
        self.unit_shift
    }

    /// Records one raw value.
    #[inline]
    pub fn record(&mut self, raw: u64) {
        self.counts[bucket_index(raw >> self.unit_shift)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(raw);
        self.min = self.min.min(raw);
        self.max = self.max.max(raw);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of raw values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest raw value recorded (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest raw value recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of raw values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimates the `q`-th percentile (`q` in `[0, 100]`) in raw
    /// units. The estimate is the containing bucket's upper bound,
    /// clamped to the exact observed `[min, max]` — so it never
    /// under-reports by more than one bucket width (≤25 %) and the
    /// overflow bucket reports the exact maximum. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = bucket_upper_bound(i)
                    .saturating_sub(1)
                    .saturating_mul(1 << self.unit_shift);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s contents into `self`. Merging is exact: the
    /// result is identical to recording every sample into one
    /// histogram, which is what makes per-shard recording safe. Both
    /// sides must share a `unit_shift` (debug-asserted; release builds
    /// merge bucket-for-bucket regardless).
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(
            self.unit_shift, other.unit_shift,
            "merging histograms with different unit shifts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates the non-empty buckets as
    /// `(raw lower bound, raw exclusive upper bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        let shift = self.unit_shift;
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| {
                let lo = bucket_lower_bound(i).saturating_mul(1 << shift);
                let hi = bucket_upper_bound(i).saturating_mul(1 << shift);
                (lo, hi, c)
            })
    }

    /// The raw bucket counts (index = [`bucket_index`] of the scaled
    /// value), for exporters that render the full distribution.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize, "v={v}");
        }
    }

    #[test]
    fn bucket_index_matches_bounds_everywhere() {
        // Every bucket's own bounds map back to it, and the scheme is
        // monotone across boundaries.
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            let hi = bucket_upper_bound(i);
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), i, "last value of bucket {i}");
                assert_eq!(bucket_index(hi), i + 1, "first value past bucket {i}");
            }
        }
        // Giant values saturate into the overflow bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1 << 40), BUCKETS - 1);
    }

    #[test]
    fn octave_boundaries() {
        // v = 8 starts the first split octave; each octave has 4
        // sub-buckets of equal width.
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_index(16), 12);
        assert_eq!(bucket_index(31), 15);
        assert_eq!(bucket_index(32), 16);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in LINEAR_MAX as usize..BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            let width = hi - lo;
            assert!(
                (width as f64) <= lo as f64 * 0.25 + 1.0,
                "bucket {i}: [{lo}, {hi}) wider than 25%"
            );
        }
    }

    #[test]
    fn count_sum_min_max_mean_are_exact() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [3u64, 100, 7, 100, 250_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 250_210);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 250_000);
        assert!((h.mean() - 50_042.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_bucket_accurate() {
        let mut h = Histogram::new();
        // 1000 samples: 900 at 100 ns, 90 at 1000 ns, 10 at 10_000 ns.
        for _ in 0..900 {
            h.record(100);
        }
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let within = |est: u64, actual: u64| {
            assert!(
                est >= actual && est as f64 <= actual as f64 * 1.25 + 1.0,
                "estimate {est} not within one bucket above {actual}"
            );
        };
        within(h.percentile(50.0), 100);
        within(h.percentile(90.0), 100);
        within(h.percentile(99.0), 1_000);
        within(h.percentile(99.9), 10_000);
        assert_eq!(h.percentile(100.0), 10_000);
        assert!(h.percentile(0.0) >= 100);
    }

    #[test]
    fn overflow_bucket_percentile_clamps_to_exact_max() {
        let mut h = Histogram::new();
        h.record(1 << 40); // far past the precise range
        assert_eq!(h.percentile(99.9), 1 << 40);
        h.record(1 << 41);
        // Ranks inside one bucket are indistinguishable; the estimate
        // is the conservative (exact) maximum, never past it.
        assert_eq!(h.percentile(99.9), 1 << 41);
        assert!(h.percentile(50.0) <= 1 << 41);
        assert_eq!(h.max(), 1 << 41);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let samples_a = [5u64, 9, 17, 300, 70_000];
        let samples_b = [0u64, 8, 16, 299, 1 << 35];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &samples_a {
            a.record(v);
            whole.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn unit_shift_extends_range() {
        let mut h = Histogram::with_unit_shift(5);
        h.record(1_000_000); // ~1 ms in ns: precise with shift 5
        let est = h.percentile(50.0);
        assert!(
            est >= 1_000_000 && est as f64 <= 1_000_000.0 * 1.25 + 64.0,
            "{est}"
        );
        // Raw-value accounting ignores the shift.
        assert_eq!(h.min(), 1_000_000);
        assert_eq!(h.sum(), 1_000_000);
    }
}
