//! Prometheus text-format (version 0.0.4) renderer.
//!
//! Slow-path export only: renders a merged [`TelemetrySnapshot`] into
//! the exposition format a future scrape endpoint would serve. Not
//! called on the packet path, so it allocates freely.

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::snapshot::TelemetrySnapshot;

/// Renders a snapshot as Prometheus exposition text. Histograms come
/// out as native `histogram` families with cumulative `le` buckets
/// (nanosecond bounds, `+Inf` terminal), counters as `counter`
/// families; per-table counters carry a `table` label and spans a
/// `span` label.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();

    counter(
        &mut out,
        "camus_packets_total",
        "Packets processed",
        snap.packets,
    );
    counter(
        &mut out,
        "camus_batches_total",
        "Batches processed",
        snap.data.batches,
    );
    counter(
        &mut out,
        "camus_sampled_packets_total",
        "Packets with per-stage timing samples",
        snap.data.sampled_packets,
    );
    counter(
        &mut out,
        "camus_decision_cache_hits_total",
        "Messages answered from the decision cache",
        snap.data.decision_cache_hits,
    );
    counter(
        &mut out,
        "camus_decision_cache_misses_total",
        "Messages that evaluated the full table chain",
        snap.data.decision_cache_misses,
    );
    counter(
        &mut out,
        "camus_decision_cache_evictions_total",
        "Decision-cache slots overwritten by a conflicting key",
        snap.data.decision_cache_evictions,
    );
    counter(
        &mut out,
        "camus_ring_full_spins_total",
        "Producer spins while an ingress ring was full",
        snap.data.ring_full_spins,
    );
    counter(
        &mut out,
        "camus_ring_empty_spins_total",
        "Consumer spins while an ingress ring was empty",
        snap.data.ring_empty_spins,
    );

    histogram(
        &mut out,
        "camus_batch_duration_ns",
        "Whole-batch processing latency",
        &snap.data.batch_ns,
    );
    histogram(
        &mut out,
        "camus_parse_duration_ns",
        "Sampled per-packet parse latency",
        &snap.data.parse_ns,
    );
    histogram(
        &mut out,
        "camus_match_duration_ns",
        "Sampled per-packet match/action latency",
        &snap.data.match_ns,
    );
    histogram(
        &mut out,
        "camus_mcast_duration_ns",
        "Sampled per-packet multicast port-union latency",
        &snap.data.mcast_ns,
    );

    if !snap.tables.is_empty() {
        let _ = writeln!(
            out,
            "# HELP camus_table_hits_total Messages matching a non-default entry"
        );
        let _ = writeln!(out, "# TYPE camus_table_hits_total counter");
        for t in &snap.tables {
            let _ = writeln!(
                out,
                "camus_table_hits_total{{table=\"{}\"}} {}",
                t.name, t.hits
            );
        }
        let _ = writeln!(
            out,
            "# HELP camus_table_misses_total Messages taking the default action"
        );
        let _ = writeln!(out, "# TYPE camus_table_misses_total counter");
        for t in &snap.tables {
            let _ = writeln!(
                out,
                "camus_table_misses_total{{table=\"{}\"}} {}",
                t.name, t.misses
            );
        }
    }

    let spans: Vec<_> = snap.spans.recorded().collect();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "# HELP camus_span_duration_ns_total Cumulative control-plane span time"
        );
        let _ = writeln!(out, "# TYPE camus_span_duration_ns_total counter");
        for (kind, stats) in &spans {
            let _ = writeln!(
                out,
                "camus_span_duration_ns_total{{span=\"{}\"}} {}",
                kind.as_str(),
                stats.total_ns
            );
        }
        let _ = writeln!(
            out,
            "# HELP camus_span_count_total Completed control-plane spans"
        );
        let _ = writeln!(out, "# TYPE camus_span_count_total counter");
        for (kind, stats) in &spans {
            let _ = writeln!(
                out,
                "camus_span_count_total{{span=\"{}\"}} {}",
                kind.as_str(),
                stats.count
            );
        }
    }

    out
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (_lo, hi, count) in h.nonzero_buckets() {
        cumulative += count;
        if hi == u64::MAX {
            // Top bucket is unbounded; fold it into +Inf below.
            continue;
        }
        // `hi` is an exclusive raw-ns bound; Prometheus `le` is
        // inclusive, so the last contained value is `hi - 1`.
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", hi - 1);
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{TableCounters, TelemetrySnapshot};
    use crate::span::SpanKind;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new(2);
        s.packets = 1_000;
        s.data.record_batch(50_000);
        s.data.record_stages(100, 800, 30);
        s.data.record_stages(140, 1_200, 25);
        s.tables.push(TableCounters {
            name: "tbl_0".into(),
            hits: 42,
            misses: 3,
        });
        s.spans.record(SpanKind::Compile, 5_000_000);
        s
    }

    #[test]
    fn renders_counters_histograms_tables_and_spans() {
        let mut snap = sample_snapshot();
        snap.data.add_hotpath(40, 2, 1, 3, 4);
        let text = render_prometheus(&snap);
        assert!(text.contains("camus_packets_total 1000"));
        assert!(text.contains("camus_decision_cache_hits_total 40"));
        assert!(text.contains("camus_decision_cache_misses_total 2"));
        assert!(text.contains("camus_decision_cache_evictions_total 1"));
        assert!(text.contains("camus_ring_full_spins_total 3"));
        assert!(text.contains("camus_ring_empty_spins_total 4"));
        assert!(text.contains("# TYPE camus_parse_duration_ns histogram"));
        assert!(text.contains("camus_parse_duration_ns_count 2"));
        assert!(text.contains("camus_parse_duration_ns_sum 240"));
        assert!(text.contains("camus_parse_duration_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("camus_table_hits_total{table=\"tbl_0\"} 42"));
        assert!(text.contains("camus_span_duration_ns_total{span=\"compile\"} 5000000"));
        assert!(text.contains("camus_span_count_total{span=\"compile\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let text = render_prometheus(&sample_snapshot());
        let mut last_le = 0u64;
        let mut last_cum = 0u64;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("camus_match_duration_ns_bucket{le=\"") else {
                continue;
            };
            let Some((le_str, cum_str)) = rest.split_once("\"} ") else {
                continue;
            };
            let cum: u64 = cum_str.parse().unwrap();
            assert!(cum >= last_cum, "cumulative counts must be monotone");
            last_cum = cum;
            if le_str != "+Inf" {
                let le: u64 = le_str.parse().unwrap();
                assert!(le > last_le, "le bounds must increase");
                last_le = le;
            }
        }
        assert_eq!(last_cum, 2, "+Inf bucket equals total count");
    }

    #[test]
    fn batch_histogram_scales_le_bounds_by_unit() {
        // Batch histogram buckets in 32 ns units; exported le bounds
        // must be back in raw nanoseconds (multiples of 32).
        let text = render_prometheus(&sample_snapshot());
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("camus_batch_duration_ns_bucket{le=\"") else {
                continue;
            };
            let le_str = rest.split('"').next().unwrap();
            if le_str == "+Inf" {
                continue;
            }
            let le: u64 = le_str.parse().unwrap();
            // le is the inclusive form of an exclusive 32 ns-aligned bound.
            assert_eq!((le + 1) % 32, 0, "le {le} should end a 32 ns-unit bucket");
            assert!(
                le >= 50_000,
                "bucket bound must cover the recorded 50_000 ns"
            );
        }
    }
}
