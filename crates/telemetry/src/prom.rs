//! Prometheus text-format (version 0.0.4) renderer.
//!
//! Slow-path export only: renders a merged [`TelemetrySnapshot`] into
//! the exposition format a future scrape endpoint would serve. Not
//! called on the packet path, so it allocates freely.
//!
//! Three entry points share one family renderer:
//!
//! * [`render_prometheus`] — a single unlabeled snapshot (the
//!   single-switch deployment);
//! * [`render_prometheus_node`] — one snapshot tagged with a
//!   `node="…"` label (one fabric leaf);
//! * [`render_prometheus_fabric`] — several per-node snapshots in one
//!   exposition, each metric family emitted once with one labeled
//!   series per node (valid exposition needs exactly one `# HELP`/
//!   `# TYPE` pair per family, so per-node rendering cannot just be
//!   concatenated).

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::snapshot::TelemetrySnapshot;

/// Renders a snapshot as Prometheus exposition text. Histograms come
/// out as native `histogram` families with cumulative `le` buckets
/// (nanosecond bounds, `+Inf` terminal), counters as `counter`
/// families; per-table counters carry a `table` label and spans a
/// `span` label.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    render_nodes(&[("", snap)])
}

/// Renders one fabric node's snapshot with a `node` label on every
/// series (e.g. `camus_packets_total{node="leaf0"} 123`).
pub fn render_prometheus_node(snap: &TelemetrySnapshot, node: &str) -> String {
    render_nodes(&[(node, snap)])
}

/// Renders a whole fabric — one labeled series per node inside each
/// metric family. Node names must be distinct.
pub fn render_prometheus_fabric(nodes: &[(&str, &TelemetrySnapshot)]) -> String {
    render_nodes(nodes)
}

/// `node="leaf0",` (trailing comma, ready to prefix further labels) or
/// the empty string for unlabeled rendering.
fn node_prefix(node: &str) -> String {
    if node.is_empty() {
        String::new()
    } else {
        format!("node=\"{node}\",")
    }
}

fn render_nodes(nodes: &[(&str, &TelemetrySnapshot)]) -> String {
    let mut out = String::new();
    let labels: Vec<String> = nodes.iter().map(|(n, _)| node_prefix(n)).collect();
    let series = |f: fn(&TelemetrySnapshot) -> u64| -> Vec<(usize, u64)> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, (_, s))| (i, f(s)))
            .collect()
    };

    counter_family(
        &mut out,
        &labels,
        "camus_packets_total",
        "Packets processed",
        &series(|s| s.packets),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_batches_total",
        "Batches processed",
        &series(|s| s.data.batches),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_sampled_packets_total",
        "Packets with per-stage timing samples",
        &series(|s| s.data.sampled_packets),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_decision_cache_hits_total",
        "Messages answered from the decision cache",
        &series(|s| s.data.decision_cache_hits),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_decision_cache_misses_total",
        "Messages that evaluated the full table chain",
        &series(|s| s.data.decision_cache_misses),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_decision_cache_evictions_total",
        "Decision-cache slots overwritten by a conflicting key",
        &series(|s| s.data.decision_cache_evictions),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_ring_full_spins_total",
        "Producer spins while an ingress ring was full",
        &series(|s| s.data.ring_full_spins),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_ring_empty_spins_total",
        "Consumer spins while an ingress ring was empty",
        &series(|s| s.data.ring_empty_spins),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_leaf_deaths_total",
        "Leaves declared dead by the fabric failure detector",
        &series(|s| s.robustness.leaf_deaths),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_failover_epochs_total",
        "Emergency failover epochs committed",
        &series(|s| s.robustness.failover_epochs),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_epoch_retries_total",
        "Epoch attempts retried after a transient fault",
        &series(|s| s.robustness.epoch_retries),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_orphaned_packets_total",
        "Packets drop-counted for dead-owned shards during failover",
        &series(|s| s.robustness.orphaned_packets),
    );
    counter_family(
        &mut out,
        &labels,
        "camus_state_loss_entries_total",
        "Register slots whose state died with a leaf",
        &series(|s| s.robustness.state_loss_entries),
    );

    histogram_family(
        &mut out,
        &labels,
        "camus_batch_duration_ns",
        "Whole-batch processing latency",
        nodes,
        |s| &s.data.batch_ns,
    );
    histogram_family(
        &mut out,
        &labels,
        "camus_parse_duration_ns",
        "Sampled per-packet parse latency",
        nodes,
        |s| &s.data.parse_ns,
    );
    histogram_family(
        &mut out,
        &labels,
        "camus_match_duration_ns",
        "Sampled per-packet match/action latency",
        nodes,
        |s| &s.data.match_ns,
    );
    histogram_family(
        &mut out,
        &labels,
        "camus_mcast_duration_ns",
        "Sampled per-packet multicast port-union latency",
        nodes,
        |s| &s.data.mcast_ns,
    );

    if nodes.iter().any(|(_, s)| !s.tables.is_empty()) {
        let _ = writeln!(
            out,
            "# HELP camus_table_hits_total Messages matching a non-default entry"
        );
        let _ = writeln!(out, "# TYPE camus_table_hits_total counter");
        for (i, (_, s)) in nodes.iter().enumerate() {
            for t in &s.tables {
                let _ = writeln!(
                    out,
                    "camus_table_hits_total{{{}table=\"{}\"}} {}",
                    labels[i], t.name, t.hits
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP camus_table_misses_total Messages taking the default action"
        );
        let _ = writeln!(out, "# TYPE camus_table_misses_total counter");
        for (i, (_, s)) in nodes.iter().enumerate() {
            for t in &s.tables {
                let _ = writeln!(
                    out,
                    "camus_table_misses_total{{{}table=\"{}\"}} {}",
                    labels[i], t.name, t.misses
                );
            }
        }
    }

    if nodes
        .iter()
        .any(|(_, s)| s.spans.recorded().next().is_some())
    {
        let _ = writeln!(
            out,
            "# HELP camus_span_duration_ns_total Cumulative control-plane span time"
        );
        let _ = writeln!(out, "# TYPE camus_span_duration_ns_total counter");
        for (i, (_, s)) in nodes.iter().enumerate() {
            for (kind, stats) in s.spans.recorded() {
                let _ = writeln!(
                    out,
                    "camus_span_duration_ns_total{{{}span=\"{}\"}} {}",
                    labels[i],
                    kind.as_str(),
                    stats.total_ns
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP camus_span_count_total Completed control-plane spans"
        );
        let _ = writeln!(out, "# TYPE camus_span_count_total counter");
        for (i, (_, s)) in nodes.iter().enumerate() {
            for (kind, stats) in s.spans.recorded() {
                let _ = writeln!(
                    out,
                    "camus_span_count_total{{{}span=\"{}\"}} {}",
                    labels[i],
                    kind.as_str(),
                    stats.count
                );
            }
        }
    }

    out
}

fn counter_family(
    out: &mut String,
    labels: &[String],
    name: &str,
    help: &str,
    series: &[(usize, u64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for &(i, value) in series {
        let label = &labels[i];
        if label.is_empty() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name}{{{}}} {value}", label.trim_end_matches(','));
        }
    }
}

fn histogram_family<'a>(
    out: &mut String,
    labels: &[String],
    name: &str,
    help: &str,
    nodes: &'a [(&str, &TelemetrySnapshot)],
    pick: fn(&'a TelemetrySnapshot) -> &'a Histogram,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (i, &(_, snap)) in nodes.iter().enumerate() {
        let label = &labels[i];
        let h = pick(snap);
        let mut cumulative = 0u64;
        for (_lo, hi, count) in h.nonzero_buckets() {
            cumulative += count;
            if hi == u64::MAX {
                // Top bucket is unbounded; fold it into +Inf below.
                continue;
            }
            // `hi` is an exclusive raw-ns bound; Prometheus `le` is
            // inclusive, so the last contained value is `hi - 1`.
            let _ = writeln!(
                out,
                "{name}_bucket{{{label}le=\"{}\"}} {cumulative}",
                hi - 1
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{label}le=\"+Inf\"}} {}", h.count());
        if label.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        } else {
            let trimmed = label.trim_end_matches(',');
            let _ = writeln!(out, "{name}_sum{{{trimmed}}} {}", h.sum());
            let _ = writeln!(out, "{name}_count{{{trimmed}}} {}", h.count());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{TableCounters, TelemetrySnapshot};
    use crate::span::SpanKind;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new(2);
        s.packets = 1_000;
        s.data.record_batch(50_000);
        s.data.record_stages(100, 800, 30);
        s.data.record_stages(140, 1_200, 25);
        s.tables.push(TableCounters {
            name: "tbl_0".into(),
            hits: 42,
            misses: 3,
        });
        s.spans.record(SpanKind::Compile, 5_000_000);
        s
    }

    #[test]
    fn renders_counters_histograms_tables_and_spans() {
        let mut snap = sample_snapshot();
        snap.data.add_hotpath(40, 2, 1, 3, 4);
        let text = render_prometheus(&snap);
        assert!(text.contains("camus_packets_total 1000"));
        assert!(text.contains("camus_decision_cache_hits_total 40"));
        assert!(text.contains("camus_decision_cache_misses_total 2"));
        assert!(text.contains("camus_decision_cache_evictions_total 1"));
        assert!(text.contains("camus_ring_full_spins_total 3"));
        assert!(text.contains("camus_ring_empty_spins_total 4"));
        assert!(text.contains("# TYPE camus_parse_duration_ns histogram"));
        assert!(text.contains("camus_parse_duration_ns_count 2"));
        assert!(text.contains("camus_parse_duration_ns_sum 240"));
        assert!(text.contains("camus_parse_duration_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("camus_table_hits_total{table=\"tbl_0\"} 42"));
        assert!(text.contains("camus_span_duration_ns_total{span=\"compile\"} 5000000"));
        assert!(text.contains("camus_span_count_total{span=\"compile\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let text = render_prometheus(&sample_snapshot());
        let mut last_le = 0u64;
        let mut last_cum = 0u64;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("camus_match_duration_ns_bucket{le=\"") else {
                continue;
            };
            let Some((le_str, cum_str)) = rest.split_once("\"} ") else {
                continue;
            };
            let cum: u64 = cum_str.parse().unwrap();
            assert!(cum >= last_cum, "cumulative counts must be monotone");
            last_cum = cum;
            if le_str != "+Inf" {
                let le: u64 = le_str.parse().unwrap();
                assert!(le > last_le, "le bounds must increase");
                last_le = le;
            }
        }
        assert_eq!(last_cum, 2, "+Inf bucket equals total count");
    }

    #[test]
    fn batch_histogram_scales_le_bounds_by_unit() {
        // Batch histogram buckets in 32 ns units; exported le bounds
        // must be back in raw nanoseconds (multiples of 32).
        let text = render_prometheus(&sample_snapshot());
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("camus_batch_duration_ns_bucket{le=\"") else {
                continue;
            };
            let le_str = rest.split('"').next().unwrap();
            if le_str == "+Inf" {
                continue;
            }
            let le: u64 = le_str.parse().unwrap();
            // le is the inclusive form of an exclusive 32 ns-aligned bound.
            assert_eq!((le + 1) % 32, 0, "le {le} should end a 32 ns-unit bucket");
            assert!(
                le >= 50_000,
                "bucket bound must cover the recorded 50_000 ns"
            );
        }
    }

    #[test]
    fn robustness_counters_render_in_both_shapes() {
        let mut snap = sample_snapshot();
        snap.robustness.leaf_deaths = 1;
        snap.robustness.failover_epochs = 2;
        snap.robustness.epoch_retries = 3;
        snap.robustness.orphaned_packets = 44;
        snap.robustness.state_loss_entries = 5;
        let flat = render_prometheus(&snap);
        assert!(flat.contains("camus_leaf_deaths_total 1"));
        assert!(flat.contains("camus_failover_epochs_total 2"));
        assert!(flat.contains("camus_epoch_retries_total 3"));
        assert!(flat.contains("camus_orphaned_packets_total 44"));
        assert!(flat.contains("camus_state_loss_entries_total 5"));
        let labeled = render_prometheus_fabric(&[("spine", &snap)]);
        assert!(labeled.contains("camus_orphaned_packets_total{node=\"spine\"} 44"));
        assert!(labeled.contains("camus_leaf_deaths_total{node=\"spine\"} 1"));
    }

    #[test]
    fn node_label_tags_every_series() {
        let snap = sample_snapshot();
        let text = render_prometheus_node(&snap, "leaf0");
        assert!(text.contains("camus_packets_total{node=\"leaf0\"} 1000"));
        assert!(text.contains("camus_parse_duration_ns_count{node=\"leaf0\"} 2"));
        assert!(text.contains("camus_parse_duration_ns_bucket{node=\"leaf0\",le=\"+Inf\"} 2"));
        assert!(text.contains("camus_table_hits_total{node=\"leaf0\",table=\"tbl_0\"} 42"));
        assert!(text.contains("camus_span_count_total{node=\"leaf0\",span=\"compile\"} 1"));
        // No unlabeled series leak through.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            assert!(line.contains("node=\"leaf0\""), "unlabeled series: {line}");
        }
    }

    #[test]
    fn fabric_rendering_emits_one_family_per_metric() {
        let a = sample_snapshot();
        let mut b = sample_snapshot();
        b.packets = 7;
        let text = render_prometheus_fabric(&[("leaf0", &a), ("leaf1", &b)]);
        assert!(text.contains("camus_packets_total{node=\"leaf0\"} 1000"));
        assert!(text.contains("camus_packets_total{node=\"leaf1\"} 7"));
        assert!(text.contains("camus_table_hits_total{node=\"leaf1\",table=\"tbl_0\"} 42"));
        // Exactly one HELP/TYPE pair per family, regardless of node count.
        let help_packets = text
            .lines()
            .filter(|l| l.starts_with("# HELP camus_packets_total"))
            .count();
        assert_eq!(help_packets, 1);
        let type_hist = text
            .lines()
            .filter(|l| l.starts_with("# TYPE camus_batch_duration_ns"))
            .count();
        assert_eq!(type_hist, 1);
    }
}
