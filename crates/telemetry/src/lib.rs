//! # camus-telemetry — allocation-free observability for the Camus stack
//!
//! The paper's evaluation (§4) is entirely about measured behaviour —
//! entry counts, throughput, update latency — and the reproduction's
//! north star ("as fast as the hardware allows") is unverifiable
//! without first-class measurement. This crate is the substrate: the
//! same way Packet Transactions argues line-rate data planes need
//! per-stage budgets and P4 exposes per-table counters as a core
//! primitive, every layer of this workspace records into the types
//! defined here.
//!
//! Design constraints, in order:
//!
//! 1. **Allocation-free on the hot path.** A [`Histogram`] is a fixed
//!    64-bucket array; recording is an index computation and two adds.
//!    A [`SpanSet`] is a fixed array of [`SpanStats`]. Nothing in this
//!    crate allocates after construction (the pipeline's counting-
//!    allocator test enforces this end to end).
//! 2. **Shard-local, merge-at-the-end.** Each engine worker owns its
//!    own [`DataPlaneTelemetry`]; there are no shared atomics or locks
//!    on the packet path. [`DataPlaneTelemetry::merge`] aggregates
//!    across shards exactly like the pipeline's `ExecStats::merge`.
//! 3. **Deterministic where it can be.** Counter totals (packets,
//!    table hits/misses) are a function of the trace and the rule set,
//!    not of the worker count — the engine's determinism test holds
//!    them bit-identical at 1/2/8 workers. Latency *samples* are of
//!    course timing-dependent.
//!
//! Components:
//!
//! * [`hist`] — log-linear latency histograms (fixed 64 buckets, ~25 %
//!   worst-case relative bucket error, exact min/max/sum/count) with
//!   percentile estimation and lossless merge;
//! * [`span`] — scoped control-plane span timers ([`SpanKind`]:
//!   compile phases, `apply_update`, `quiesce`, worker respawn);
//! * [`snapshot`] — [`DataPlaneTelemetry`] (the per-shard record) and
//!   [`TelemetrySnapshot`] (the merged, versioned export the benches
//!   serialize to `results/TELEMETRY_engine.json`);
//! * [`prom`] — a Prometheus text-format renderer for future scrape
//!   endpoints.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod hist;
pub mod prom;
pub mod snapshot;
pub mod span;

pub use hist::{Histogram, BUCKETS};
pub use prom::{render_prometheus, render_prometheus_fabric, render_prometheus_node};
pub use snapshot::{
    DataPlaneTelemetry, RobustnessCounters, TableCounters, TelemetrySnapshot, SNAPSHOT_VERSION,
};
pub use span::{SpanKind, SpanSet, SpanStats, SpanTimer};
