//! Property tests for the SWAR field extractors: on *arbitrary* bytes,
//! at *every* offset (in range, straddling the end, or far past it),
//! each wide load must agree bit-for-bit with its byte-at-a-time
//! scalar twin — and neither may ever panic. The scalar twins are the
//! executable spec; these tests are what let the decoders use single
//! wide reads without weakening the crate's total no-panic guarantee.

// Gated off by default: the vendored `proptest` subset is heavier than
// the tier-1 tests. Enable with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

use camus_itch::bytes::{
    load_be_u16, load_be_u16_scalar, load_be_u32, load_be_u32_scalar, load_be_u64,
    load_be_u64_scalar, load_le_u32, load_le_u32_scalar,
};
use camus_itch::itch::ItchMessage;
use camus_itch::moldudp::MoldPacket;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wide loads agree with the scalar spec at every offset,
    /// including offsets that truncate the read or miss the buffer
    /// entirely (`buf.len() + 16` comfortably covers both).
    #[test]
    fn swar_loads_match_scalar_twins(
        buf in prop::collection::vec(any::<u8>(), 0..64),
        off in 0usize..80,
    ) {
        prop_assert_eq!(load_be_u64(&buf, off), load_be_u64_scalar(&buf, off));
        prop_assert_eq!(load_be_u32(&buf, off), load_be_u32_scalar(&buf, off));
        prop_assert_eq!(load_be_u16(&buf, off), load_be_u16_scalar(&buf, off));
        prop_assert_eq!(load_le_u32(&buf, off), load_le_u32_scalar(&buf, off));
    }

    /// Degenerate offsets (wrap-around candidates) never panic and
    /// read as all-missing.
    #[test]
    fn extreme_offsets_read_zero(buf in prop::collection::vec(any::<u8>(), 0..32)) {
        for off in [usize::MAX, usize::MAX - 7, usize::MAX / 2] {
            prop_assert_eq!(load_be_u64(&buf, off), 0);
            prop_assert_eq!(load_be_u32(&buf, off), 0);
            prop_assert_eq!(load_be_u16(&buf, off), 0);
            prop_assert_eq!(load_le_u32(&buf, off), 0);
        }
    }

    /// The vectorized decoders stay total: arbitrary byte soup through
    /// the ITCH message decoder and the MoldUDP64 walker returns a
    /// typed result, never a panic.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        buf in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = ItchMessage::decode(&buf);
        if let Ok(p) = MoldPacket::new_checked(&buf[..]) {
            // Iterating the blocks exercises the SWAR length reads.
            let _ = p.messages().count();
        }
    }
}
