//! ITCH 5.0 messages.
//!
//! The paper's experiments use **add-order** messages ("a new order
//! that has been accepted by Nasdaq. It includes the stock symbol,
//! number of shares, price, message length and a buy/sell indicator",
//! §2); the decoder also understands the other message types that
//! dominate real ITCH traffic so trace synthesis can mix realistic
//! non-add-order noise.

use crate::bytes::{arr, load_be_u16, load_be_u32, load_be_u64};
use crate::WireError;

/// Buy/sell indicator of an order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Buy order (`'B'`).
    Buy,
    /// Sell order (`'S'`).
    Sell,
}

impl Side {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            Side::Buy => b'B',
            Side::Sell => b'S',
        }
    }

    /// Parses the wire byte.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            b'B' => Ok(Side::Buy),
            b'S' => Ok(Side::Sell),
            _ => Err(WireError::BadValue("itch buy/sell indicator")),
        }
    }
}

/// Encodes a stock symbol as the 8-byte, space-padded, left-justified
/// field ITCH uses.
pub fn encode_stock(symbol: &str) -> [u8; 8] {
    let mut b = [b' '; 8];
    for (i, c) in symbol.bytes().take(8).enumerate() {
        b[i] = c;
    }
    b
}

/// Decodes an 8-byte stock field back to a trimmed string.
pub fn decode_stock(b: &[u8; 8]) -> String {
    String::from_utf8_lossy(b).trim_end().to_string()
}

/// An ITCH 5.0 add-order ('A') message. 36 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddOrder {
    /// Locate code identifying the security.
    pub stock_locate: u16,
    /// Nasdaq-internal tracking number.
    pub tracking_number: u16,
    /// Nanoseconds since midnight (48 bits).
    pub timestamp_ns: u64,
    /// Unique order reference.
    pub order_ref: u64,
    /// Buy or sell.
    pub side: Side,
    /// Number of shares.
    pub shares: u32,
    /// Stock symbol, space padded.
    pub stock: [u8; 8],
    /// Price in fixed-point with 4 decimal places.
    pub price: u32,
}

/// Wire length of an add-order message.
pub const ADD_ORDER_LEN: usize = 36;

impl AddOrder {
    /// Convenience constructor from a symbol string.
    pub fn new(symbol: &str, side: Side, shares: u32, price: u32) -> Self {
        AddOrder {
            stock_locate: 0,
            tracking_number: 0,
            timestamp_ns: 0,
            order_ref: 0,
            side,
            shares,
            stock: encode_stock(symbol),
            price,
        }
    }

    /// Serializes to the 36-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(ADD_ORDER_LEN);
        b.push(b'A');
        b.extend_from_slice(&self.stock_locate.to_be_bytes());
        b.extend_from_slice(&self.tracking_number.to_be_bytes());
        b.extend_from_slice(&self.timestamp_ns.to_be_bytes()[2..8]);
        b.extend_from_slice(&self.order_ref.to_be_bytes());
        b.push(self.side.to_byte());
        b.extend_from_slice(&self.shares.to_be_bytes());
        b.extend_from_slice(&self.stock);
        b.extend_from_slice(&self.price.to_be_bytes());
        debug_assert_eq!(b.len(), ADD_ORDER_LEN);
        b
    }

    /// Parses the wire form (including the leading type byte).
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        if b.len() < ADD_ORDER_LEN {
            return Err(WireError::Truncated("itch add-order"));
        }
        if b[0] != b'A' {
            return Err(WireError::BadValue("itch add-order type"));
        }
        // SWAR field extraction: each multi-byte field is one wide
        // load (the length guard above makes every read in-bounds).
        // The 48-bit timestamp is the low 6 bytes of the u64 at
        // offset 3, masked — no scratch array, no byte loop.
        Ok(AddOrder {
            stock_locate: load_be_u16(b, 1),
            tracking_number: load_be_u16(b, 3),
            timestamp_ns: load_be_u64(b, 3) & 0x0000_ffff_ffff_ffff,
            order_ref: load_be_u64(b, 11),
            side: Side::from_byte(b[19])?,
            shares: load_be_u32(b, 20),
            stock: arr(b, 24),
            price: load_be_u32(b, 32),
        })
    }

    /// The stock symbol, trimmed.
    pub fn symbol(&self) -> String {
        decode_stock(&self.stock)
    }

    /// The stock field as the `u64` the data plane matches on.
    pub fn stock_u64(&self) -> u64 {
        u64::from_be_bytes(self.stock)
    }
}

/// Any ITCH message the codec understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItchMessage {
    /// Add-order ('A') — the subscription subject.
    AddOrder(AddOrder),
    /// System event ('S', 12 bytes): event code only.
    SystemEvent {
        /// Event code byte (e.g. 'O' start of messages, 'C' end of day).
        code: u8,
    },
    /// Order executed ('E', 31 bytes).
    OrderExecuted {
        /// Order reference of the executed order.
        order_ref: u64,
        /// Executed share count.
        shares: u32,
        /// Match number of the execution.
        match_no: u64,
    },
    /// Order cancel ('X', 23 bytes).
    OrderCancel {
        /// Order reference.
        order_ref: u64,
        /// Cancelled share count.
        shares: u32,
    },
    /// Order delete ('D', 19 bytes).
    OrderDelete {
        /// Order reference.
        order_ref: u64,
    },
    /// Non-cross trade ('P', 44 bytes).
    Trade {
        /// Order reference.
        order_ref: u64,
        /// Side of the resting order.
        side: Side,
        /// Shares traded.
        shares: u32,
        /// Stock symbol.
        stock: [u8; 8],
        /// Trade price.
        price: u32,
        /// Match number.
        match_no: u64,
    },
}

impl ItchMessage {
    /// The wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            ItchMessage::AddOrder(_) => b'A',
            ItchMessage::SystemEvent { .. } => b'S',
            ItchMessage::OrderExecuted { .. } => b'E',
            ItchMessage::OrderCancel { .. } => b'X',
            ItchMessage::OrderDelete { .. } => b'D',
            ItchMessage::Trade { .. } => b'P',
        }
    }

    /// Serializes to wire form (type byte + body). Locate/tracking/
    /// timestamp prefixes are zero for the non-add-order messages (the
    /// workload generator only needs them as realistic *noise*).
    pub fn encode(&self) -> Vec<u8> {
        fn prefix(t: u8) -> Vec<u8> {
            let mut b = Vec::new();
            b.push(t);
            b.extend_from_slice(&[0u8; 10]); // locate, tracking, timestamp
            b
        }
        match self {
            ItchMessage::AddOrder(a) => a.encode(),
            ItchMessage::SystemEvent { code } => {
                let mut b = prefix(b'S');
                b.push(*code);
                b
            }
            ItchMessage::OrderExecuted {
                order_ref,
                shares,
                match_no,
            } => {
                let mut b = prefix(b'E');
                b.extend_from_slice(&order_ref.to_be_bytes());
                b.extend_from_slice(&shares.to_be_bytes());
                b.extend_from_slice(&match_no.to_be_bytes());
                b
            }
            ItchMessage::OrderCancel { order_ref, shares } => {
                let mut b = prefix(b'X');
                b.extend_from_slice(&order_ref.to_be_bytes());
                b.extend_from_slice(&shares.to_be_bytes());
                b
            }
            ItchMessage::OrderDelete { order_ref } => {
                let mut b = prefix(b'D');
                b.extend_from_slice(&order_ref.to_be_bytes());
                b
            }
            ItchMessage::Trade {
                order_ref,
                side,
                shares,
                stock,
                price,
                match_no,
            } => {
                let mut b = prefix(b'P');
                b.extend_from_slice(&order_ref.to_be_bytes());
                b.push(side.to_byte());
                b.extend_from_slice(&shares.to_be_bytes());
                b.extend_from_slice(stock);
                b.extend_from_slice(&price.to_be_bytes());
                b.extend_from_slice(&match_no.to_be_bytes());
                b
            }
        }
    }

    /// Parses any known message from its wire form.
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        if b.is_empty() {
            return Err(WireError::Truncated("itch message"));
        }
        let need = |n: usize| -> Result<(), WireError> {
            if b.len() < n {
                Err(WireError::Truncated("itch message body"))
            } else {
                Ok(())
            }
        };
        match b[0] {
            b'A' => Ok(ItchMessage::AddOrder(AddOrder::decode(b)?)),
            b'S' => {
                need(12)?;
                Ok(ItchMessage::SystemEvent { code: b[11] })
            }
            b'E' => {
                need(31)?;
                Ok(ItchMessage::OrderExecuted {
                    order_ref: load_be_u64(b, 11),
                    shares: load_be_u32(b, 19),
                    match_no: load_be_u64(b, 23),
                })
            }
            b'X' => {
                need(23)?;
                Ok(ItchMessage::OrderCancel {
                    order_ref: load_be_u64(b, 11),
                    shares: load_be_u32(b, 19),
                })
            }
            b'D' => {
                need(19)?;
                Ok(ItchMessage::OrderDelete {
                    order_ref: load_be_u64(b, 11),
                })
            }
            b'P' => {
                need(44)?;
                Ok(ItchMessage::Trade {
                    order_ref: load_be_u64(b, 11),
                    side: Side::from_byte(b[19])?,
                    shares: load_be_u32(b, 20),
                    stock: arr(b, 24),
                    price: load_be_u32(b, 32),
                    match_no: load_be_u64(b, 36),
                })
            }
            _ => Err(WireError::BadValue("itch message type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_order_roundtrips() {
        let mut a = AddOrder::new("GOOGL", Side::Buy, 500, 1_234_500);
        a.stock_locate = 77;
        a.tracking_number = 3;
        a.timestamp_ns = 0x0000_1234_5678_9abc;
        a.order_ref = 0xdead_beef_cafe_f00d;
        let wire = a.encode();
        assert_eq!(wire.len(), ADD_ORDER_LEN);
        let b = AddOrder::decode(&wire).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.symbol(), "GOOGL");
    }

    #[test]
    fn timestamp_is_48_bits() {
        let mut a = AddOrder::new("X", Side::Sell, 1, 1);
        a.timestamp_ns = 0xffff_ffff_ffff_ffff;
        let b = AddOrder::decode(&a.encode()).unwrap();
        assert_eq!(b.timestamp_ns, 0x0000_ffff_ffff_ffff);
    }

    #[test]
    fn stock_u64_matches_symbol_encoding() {
        let a = AddOrder::new("MSFT", Side::Buy, 1, 1);
        assert_eq!(a.stock_u64(), u64::from_be_bytes(*b"MSFT    "));
    }

    #[test]
    fn all_message_types_roundtrip() {
        let msgs = vec![
            ItchMessage::AddOrder(AddOrder::new("AAPL", Side::Sell, 100, 99_0000)),
            ItchMessage::SystemEvent { code: b'O' },
            ItchMessage::OrderExecuted {
                order_ref: 1,
                shares: 2,
                match_no: 3,
            },
            ItchMessage::OrderCancel {
                order_ref: 4,
                shares: 5,
            },
            ItchMessage::OrderDelete { order_ref: 6 },
            ItchMessage::Trade {
                order_ref: 7,
                side: Side::Buy,
                shares: 8,
                stock: encode_stock("ORCL"),
                price: 9,
                match_no: 10,
            },
        ];
        for m in msgs {
            let wire = m.encode();
            assert_eq!(
                ItchMessage::decode(&wire).unwrap(),
                m,
                "type {}",
                m.type_byte() as char
            );
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ItchMessage::decode(&[]).is_err());
        assert!(ItchMessage::decode(b"Z123").is_err());
        assert!(ItchMessage::decode(b"A").is_err()); // truncated add-order
                                                     // Bad side byte.
        let mut wire = AddOrder::new("X", Side::Buy, 1, 1).encode();
        wire[19] = b'Q';
        assert_eq!(
            AddOrder::decode(&wire).unwrap_err(),
            WireError::BadValue("itch buy/sell indicator")
        );
    }

    #[test]
    fn stock_codec_pads_and_trims() {
        assert_eq!(&encode_stock("GOOGL"), b"GOOGL   ");
        assert_eq!(decode_stock(b"GOOGL   "), "GOOGL");
        assert_eq!(&encode_stock("TOOLONGSYM"), b"TOOLONGS");
    }
}
