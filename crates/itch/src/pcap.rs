//! Classic pcap (libpcap 2.4) file writing and reading, so synthesized
//! feeds can be inspected with tcpdump/Wireshark and replayed from
//! disk. Microsecond timestamps, LINKTYPE_ETHERNET.

use std::io::{self, Read, Write};

use crate::WireError;

const MAGIC_US: u32 = 0xa1b2_c3d4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp, nanoseconds (stored with µs resolution).
    pub time_ns: u64,
    /// Frame bytes.
    pub bytes: Vec<u8>,
}

/// Writes the global pcap header.
pub fn write_header<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(&MAGIC_US.to_le_bytes())?;
    w.write_all(&VERSION_MAJOR.to_le_bytes())?;
    w.write_all(&VERSION_MINOR.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())
}

/// Appends one packet record.
pub fn write_packet<W: Write>(w: &mut W, time_ns: u64, bytes: &[u8]) -> io::Result<()> {
    let ts_sec = (time_ns / 1_000_000_000) as u32;
    let ts_usec = ((time_ns % 1_000_000_000) / 1_000) as u32;
    w.write_all(&ts_sec.to_le_bytes())?;
    w.write_all(&ts_usec.to_le_bytes())?;
    w.write_all(&(bytes.len() as u32).to_le_bytes())?; // incl_len
    w.write_all(&(bytes.len() as u32).to_le_bytes())?; // orig_len
    w.write_all(bytes)
}

/// Writes a whole capture in one call.
pub fn write_capture<W: Write>(
    w: &mut W,
    packets: impl IntoIterator<Item = PcapPacket>,
) -> io::Result<usize> {
    write_header(w)?;
    let mut n = 0;
    for p in packets {
        write_packet(w, p.time_ns, &p.bytes)?;
        n += 1;
    }
    Ok(n)
}

/// Reads a whole capture. Accepts only the format `write_capture`
/// produces (little-endian, µs timestamps, Ethernet link type).
pub fn read_capture<R: Read>(r: &mut R) -> Result<Vec<PcapPacket>, WireError> {
    let mut hdr = [0u8; 24];
    read_exact(r, &mut hdr).map_err(|_| WireError::Truncated("pcap header"))?;
    let magic = crate::bytes::le_u32(&hdr, 0);
    if magic != MAGIC_US {
        return Err(WireError::BadValue("pcap magic"));
    }
    let linktype = crate::bytes::le_u32(&hdr, 20);
    if linktype != LINKTYPE_ETHERNET {
        return Err(WireError::BadValue("pcap linktype"));
    }
    let mut out = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match read_exact(r, &mut rec) {
            Ok(()) => {}
            Err(ReadErr::Eof(0)) => break, // clean end
            Err(_) => return Err(WireError::Truncated("pcap record header")),
        }
        let ts_sec = crate::bytes::le_u32(&rec, 0);
        let ts_usec = crate::bytes::le_u32(&rec, 4);
        let incl = crate::bytes::le_u32(&rec, 8) as usize;
        if incl > 1 << 20 {
            return Err(WireError::BadLength("pcap record length"));
        }
        let mut bytes = vec![0u8; incl];
        read_exact(r, &mut bytes).map_err(|_| WireError::Truncated("pcap record body"))?;
        out.push(PcapPacket {
            time_ns: u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_usec) * 1_000,
            bytes,
        });
    }
    Ok(out)
}

enum ReadErr {
    /// EOF after reading this many bytes.
    Eof(usize),
    Io,
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ReadErr> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadErr::Eof(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadErr::Io),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itch::{AddOrder, ItchMessage, Side};
    use crate::{build_feed_packet, FeedConfig};

    fn sample(n: usize) -> Vec<PcapPacket> {
        (0..n)
            .map(|i| PcapPacket {
                time_ns: i as u64 * 1_000_000 + 2_000, // µs-aligned + sub-µs lost
                bytes: build_feed_packet(
                    &FeedConfig::default(),
                    i as u64,
                    &[ItchMessage::AddOrder(AddOrder::new(
                        "GOOGL",
                        Side::Buy,
                        1,
                        1,
                    ))],
                ),
            })
            .collect()
    }

    #[test]
    fn roundtrips_packets() {
        let pkts = sample(5);
        let mut buf = Vec::new();
        assert_eq!(write_capture(&mut buf, pkts.clone()).unwrap(), 5);
        let back = read_capture(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in pkts.iter().zip(&back) {
            assert_eq!(a.bytes, b.bytes);
            // µs resolution: sub-µs remainder truncated.
            assert_eq!(b.time_ns, a.time_ns / 1000 * 1000);
        }
    }

    #[test]
    fn header_matches_libpcap_layout() {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&buf[20..24], &1u32.to_le_bytes());
    }

    #[test]
    fn empty_capture_roundtrips() {
        let mut buf = Vec::new();
        write_capture(&mut buf, []).unwrap();
        assert!(read_capture(&mut buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert_eq!(
            read_capture(&mut &b"short"[..]).unwrap_err(),
            WireError::Truncated("pcap header")
        );
        let mut buf = Vec::new();
        write_capture(&mut buf, sample(1)).unwrap();
        buf[0] = 0;
        assert_eq!(
            read_capture(&mut buf.as_slice()).unwrap_err(),
            WireError::BadValue("pcap magic")
        );

        let mut buf2 = Vec::new();
        write_capture(&mut buf2, sample(1)).unwrap();
        buf2.truncate(buf2.len() - 3);
        assert_eq!(
            read_capture(&mut buf2.as_slice()).unwrap_err(),
            WireError::Truncated("pcap record body")
        );
    }

    #[test]
    fn parsed_records_are_valid_feed_packets() {
        let mut buf = Vec::new();
        write_capture(&mut buf, sample(3)).unwrap();
        for p in read_capture(&mut buf.as_slice()).unwrap() {
            let (_, msgs) = crate::parse_feed_packet(&p.bytes).unwrap();
            assert_eq!(msgs.len(), 1);
        }
    }
}
