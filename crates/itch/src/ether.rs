//! Ethernet II frames.

use crate::bytes::arr;
use crate::WireError;

/// Length of an Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A typed view over an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wraps a buffer, checking the fixed header is present.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated("ethernet frame"));
        }
        Ok(Frame { buffer })
    }

    /// Destination MAC.
    pub fn dst(&self) -> [u8; 6] {
        arr(self.buffer.as_ref(), 0)
    }

    /// Source MAC.
    pub fn src(&self) -> [u8; 6] {
        arr(self.buffer.as_ref(), 6)
    }

    /// EtherType.
    pub fn ethertype(&self) -> u16 {
        crate::bytes::load_be_u16(self.buffer.as_ref(), 12)
    }

    /// Payload after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Writes the header fields.
    pub fn set_header(&mut self, dst: [u8; 6], src: [u8; 6], ethertype: u16) {
        let b = self.buffer.as_mut();
        b[0..6].copy_from_slice(&dst);
        b[6..12].copy_from_slice(&src);
        b[12..14].copy_from_slice(&ethertype.to_be_bytes());
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Builds a frame around a payload.
pub fn build(dst: [u8; 6], src: [u8; 6], ethertype: u16, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    if let Ok(mut f) = Frame::new_checked(&mut buf[..]) {
        f.set_header(dst, src, ethertype);
        f.payload_mut().copy_from_slice(payload);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const DST: [u8; 6] = [0x01, 0x00, 0x5e, 0x00, 0x00, 0x01];
    const SRC: [u8; 6] = [0x02, 0x00, 0x00, 0x00, 0x00, 0x07];

    #[test]
    fn build_and_parse_roundtrip() {
        let buf = build(DST, SRC, ETHERTYPE_IPV4, b"payload");
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), DST);
        assert_eq!(f.src(), SRC);
        assert_eq!(f.ethertype(), ETHERTYPE_IPV4);
        assert_eq!(f.payload(), b"payload");
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(
            Frame::new_checked(&[0u8; 13][..]).unwrap_err(),
            WireError::Truncated("ethernet frame")
        );
    }
}
