//! MoldUDP64 session framing (Nasdaq's downstream packet format).
//!
//! Layout: 10-byte session id, 8-byte sequence number, 2-byte message
//! count, then `count` message blocks of `[length: u16][payload]`.

use crate::bytes::load_be_u16;
use crate::WireError;

/// MoldUDP64 header length (session + sequence + count).
pub const HEADER_LEN: usize = 20;

/// A typed view over a MoldUDP64 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoldPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> MoldPacket<T> {
    /// Wraps a buffer, checking the header and that every advertised
    /// message block is present.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated("moldudp64 header"));
        }
        let count = usize::from(load_be_u16(b, 18));
        let mut off = HEADER_LEN;
        for _ in 0..count {
            if off + 2 > b.len() {
                return Err(WireError::Truncated("moldudp64 block length"));
            }
            let len = usize::from(load_be_u16(b, off));
            off += 2;
            if off + len > b.len() {
                return Err(WireError::BadLength("moldudp64 block"));
            }
            off += len;
        }
        Ok(MoldPacket { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// The 10-byte session id.
    pub fn session(&self) -> [u8; 10] {
        crate::bytes::arr(self.b(), 0)
    }

    /// Sequence number of the first message in the packet.
    pub fn sequence(&self) -> u64 {
        crate::bytes::be_u64(self.b(), 10)
    }

    /// Number of message blocks.
    pub fn message_count(&self) -> usize {
        usize::from(load_be_u16(self.b(), 18))
    }

    /// Iterates the message payloads.
    pub fn messages(&self) -> MessageIter<'_> {
        MessageIter {
            buf: self.b(),
            off: HEADER_LEN,
            remaining: self.message_count(),
        }
    }
}

/// Iterator over MoldUDP64 message blocks.
pub struct MessageIter<'a> {
    buf: &'a [u8],
    off: usize,
    remaining: usize,
}

impl<'a> Iterator for MessageIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        // Bounds were validated in new_checked; the total load keeps
        // the walk panic-free even through a hand-built iterator.
        let len = usize::from(load_be_u16(self.buf, self.off));
        let start = self.off + 2;
        self.off = start + len;
        self.remaining -= 1;
        Some(&self.buf[start..start + len])
    }
}

/// Builds a MoldUDP64 packet around message payloads.
pub fn build(session: [u8; 10], sequence: u64, messages: &[&[u8]]) -> Vec<u8> {
    let body: usize = messages.iter().map(|m| 2 + m.len()).sum();
    let mut buf = Vec::with_capacity(HEADER_LEN + body);
    buf.extend_from_slice(&session);
    buf.extend_from_slice(&sequence.to_be_bytes());
    buf.extend_from_slice(&(messages.len() as u16).to_be_bytes());
    for m in messages {
        buf.extend_from_slice(&(m.len() as u16).to_be_bytes());
        buf.extend_from_slice(m);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const SESSION: [u8; 10] = *b"CAMUS00001";

    #[test]
    fn build_and_parse_roundtrip() {
        let buf = build(SESSION, 42, &[b"first", b"second!"]);
        let p = MoldPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.session(), SESSION);
        assert_eq!(p.sequence(), 42);
        assert_eq!(p.message_count(), 2);
        let msgs: Vec<&[u8]> = p.messages().collect();
        assert_eq!(msgs, vec![&b"first"[..], &b"second!"[..]]);
    }

    #[test]
    fn empty_packet_has_no_messages() {
        let buf = build(SESSION, 7, &[]);
        let p = MoldPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.message_count(), 0);
        assert_eq!(p.messages().count(), 0);
    }

    #[test]
    fn rejects_truncations() {
        assert_eq!(
            MoldPacket::new_checked(&[0u8; 19][..]).unwrap_err(),
            WireError::Truncated("moldudp64 header")
        );
        let mut buf = build(SESSION, 1, &[b"abc"]);
        buf.truncate(buf.len() - 1);
        assert_eq!(
            MoldPacket::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength("moldudp64 block")
        );
        // Count says 2 but only one block present.
        let mut buf2 = build(SESSION, 1, &[b"abc"]);
        buf2[19] = 2;
        assert_eq!(
            MoldPacket::new_checked(&buf2[..]).unwrap_err(),
            WireError::Truncated("moldudp64 block length")
        );
    }
}
