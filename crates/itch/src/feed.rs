//! End-to-end feed packets: Ethernet / IPv4 / UDP / MoldUDP64 / ITCH.

use crate::itch::ItchMessage;
use crate::{ether, ipv4, moldudp, udp, WireError};

/// Static addressing for a feed channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedConfig {
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Destination (multicast) MAC.
    pub dst_mac: [u8; 6],
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination (multicast) IPv4 address.
    pub dst_ip: u32,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// MoldUDP64 session id.
    pub session: [u8; 10],
}

impl Default for FeedConfig {
    fn default() -> Self {
        // 239.192.0.1 with its derived multicast MAC, Nasdaq-ish ports.
        FeedConfig {
            src_mac: [0x02, 0x00, 0x00, 0x00, 0x00, 0x01],
            dst_mac: [0x01, 0x00, 0x5e, 0x40, 0x00, 0x01],
            src_ip: 0x0a00_0001,
            dst_ip: 0xefc0_0001,
            src_port: 26400,
            dst_port: 26477,
            session: *b"CAMUS00001",
        }
    }
}

/// Builds one feed packet carrying the given messages, starting at
/// MoldUDP sequence number `sequence`.
pub fn build_feed_packet(cfg: &FeedConfig, sequence: u64, messages: &[ItchMessage]) -> Vec<u8> {
    let encoded: Vec<Vec<u8>> = messages.iter().map(|m| m.encode()).collect();
    let refs: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
    let mold = moldudp::build(cfg.session, sequence, &refs);
    let udp_dgram = udp::build(cfg.src_port, cfg.dst_port, &mold);
    let ip = ipv4::build(cfg.src_ip, cfg.dst_ip, ipv4::PROTO_UDP, 16, &udp_dgram);
    ether::build(cfg.dst_mac, cfg.src_mac, ether::ETHERTYPE_IPV4, &ip)
}

/// Parses a feed packet back into its ITCH messages, validating every
/// layer. Unknown ITCH message types are skipped (real feeds carry
/// dozens of types; subscribers ignore what they don't handle).
pub fn parse_feed_packet(bytes: &[u8]) -> Result<(u64, Vec<ItchMessage>), WireError> {
    let frame = ether::Frame::new_checked(bytes)?;
    if frame.ethertype() != ether::ETHERTYPE_IPV4 {
        return Err(WireError::BadValue("ethertype"));
    }
    let ip = ipv4::Packet::new_checked(frame.payload())?;
    if ip.protocol() != ipv4::PROTO_UDP {
        return Err(WireError::BadValue("ip protocol"));
    }
    let dgram = udp::Datagram::new_checked(ip.payload())?;
    let mold = moldudp::MoldPacket::new_checked(dgram.payload())?;
    let mut out = Vec::with_capacity(mold.message_count());
    for m in mold.messages() {
        match ItchMessage::decode(m) {
            Ok(msg) => out.push(msg),
            Err(WireError::BadValue("itch message type")) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok((mold.sequence(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itch::{AddOrder, Side};

    #[test]
    fn feed_roundtrips() {
        let cfg = FeedConfig::default();
        let msgs = vec![
            ItchMessage::AddOrder(AddOrder::new("GOOGL", Side::Buy, 100, 1_500_000)),
            ItchMessage::OrderDelete { order_ref: 9 },
            ItchMessage::AddOrder(AddOrder::new("MSFT", Side::Sell, 50, 3_000_000)),
        ];
        let pkt = build_feed_packet(&cfg, 1000, &msgs);
        let (seq, parsed) = parse_feed_packet(&pkt).unwrap();
        assert_eq!(seq, 1000);
        assert_eq!(parsed, msgs);
    }

    #[test]
    fn empty_packet_roundtrips() {
        let pkt = build_feed_packet(&FeedConfig::default(), 5, &[]);
        let (seq, parsed) = parse_feed_packet(&pkt).unwrap();
        assert_eq!(seq, 5);
        assert!(parsed.is_empty());
    }

    #[test]
    fn layer_lengths_are_consistent() {
        let pkt = build_feed_packet(
            &FeedConfig::default(),
            0,
            &[ItchMessage::AddOrder(AddOrder::new("A", Side::Buy, 1, 1))],
        );
        // eth 14 + ip 20 + udp 8 + mold 20 + block (2 + 36)
        assert_eq!(pkt.len(), 14 + 20 + 8 + 20 + 2 + 36);
        let ip = crate::ipv4::Packet::new_checked(&pkt[14..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.total_len(), pkt.len() - 14);
    }

    #[test]
    fn unknown_message_types_are_skipped() {
        // Hand-craft a mold payload with one junk message among two good
        // ones.
        let cfg = FeedConfig::default();
        let a = ItchMessage::AddOrder(AddOrder::new("GOOGL", Side::Buy, 1, 1)).encode();
        let junk = [b'Z', 1, 2, 3];
        let b = ItchMessage::OrderDelete { order_ref: 1 }.encode();
        let mold = crate::moldudp::build(cfg.session, 0, &[&a[..], &junk[..], &b[..]]);
        let udp_d = crate::udp::build(cfg.src_port, cfg.dst_port, &mold);
        let ip = crate::ipv4::build(cfg.src_ip, cfg.dst_ip, crate::ipv4::PROTO_UDP, 16, &udp_d);
        let pkt = crate::ether::build(cfg.dst_mac, cfg.src_mac, crate::ether::ETHERTYPE_IPV4, &ip);
        let (_, parsed) = parse_feed_packet(&pkt).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn non_ip_frames_are_rejected() {
        let pkt = crate::ether::build([0; 6], [0; 6], 0x0806, b"arp");
        assert_eq!(
            parse_feed_packet(&pkt).unwrap_err(),
            WireError::BadValue("ethertype")
        );
    }
}
