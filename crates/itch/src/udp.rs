//! UDP datagrams. Checksums are optional in IPv4 (0 = none); market
//! feeds routinely disable them, and so does our builder by default.

use crate::bytes::load_be_u16;
use crate::WireError;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wraps a buffer, checking header and length consistency.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated("udp header"));
        }
        let len = usize::from(load_be_u16(b, 4));
        if len < HEADER_LEN || len > b.len() {
            return Err(WireError::BadLength("udp length"));
        }
        Ok(Datagram { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        load_be_u16(self.b(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        load_be_u16(self.b(), 2)
    }

    /// Datagram length per the header (header + payload).
    pub fn len(&self) -> usize {
        usize::from(load_be_u16(self.b(), 4))
    }

    /// True when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == HEADER_LEN
    }

    /// Payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN..self.len()]
    }
}

/// Builds a UDP datagram (checksum 0 = disabled).
pub fn build(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
    let len = (HEADER_LEN + payload.len()) as u16;
    let mut buf = Vec::with_capacity(usize::from(len));
    buf.extend_from_slice(&src_port.to_be_bytes());
    buf.extend_from_slice(&dst_port.to_be_bytes());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_roundtrip() {
        let buf = build(26400, 26477, b"itch");
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 26400);
        assert_eq!(d.dst_port(), 26477);
        assert_eq!(d.len(), 12);
        assert!(!d.is_empty());
        assert_eq!(d.payload(), b"itch");
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(
            Datagram::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated("udp header")
        );
        let mut buf = build(1, 2, b"xy");
        buf[5] = 200; // length beyond buffer
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength("udp length")
        );
        let mut buf2 = build(1, 2, b"");
        buf2[5] = 4; // length below header size
        assert_eq!(
            Datagram::new_checked(&buf2[..]).unwrap_err(),
            WireError::BadLength("udp length")
        );
    }

    #[test]
    fn payload_bounded_by_length_field() {
        let mut buf = build(1, 2, b"abcd");
        buf.extend_from_slice(b"padding");
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.payload(), b"abcd");
    }
}
