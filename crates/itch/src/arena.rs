//! A flat packet arena for trace replay.
//!
//! Replaying a trace through the pipeline or the multi-core engine
//! wants packets as `&[u8]` slices, but storing a trace as
//! `Vec<Vec<u8>>` costs one heap allocation per packet and scatters
//! packets across the heap. A [`PacketArena`] packs every packet into
//! one contiguous byte buffer with an offset table — two allocations
//! total, cache-friendly iteration, and zero-copy `&[u8]` access —
//! the same layout the engine's internal batches use.

/// A trace of packets stored back-to-back in one buffer, each with a
/// receive timestamp in microseconds.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    bytes: Vec<u8>,
    ends: Vec<usize>,
    times: Vec<u64>,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena sized for `packets` packets of about
    /// `avg_len` bytes each, so pushes never reallocate.
    pub fn with_capacity(packets: usize, avg_len: usize) -> Self {
        PacketArena {
            bytes: Vec::with_capacity(packets * avg_len),
            ends: Vec::with_capacity(packets),
            times: Vec::with_capacity(packets),
        }
    }

    /// Appends a packet and its timestamp.
    pub fn push(&mut self, packet: &[u8], now_us: u64) {
        self.bytes.extend_from_slice(packet);
        self.ends.push(self.bytes.len());
        self.times.push(now_us);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the arena holds no packets.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total payload bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Packet `i` and its timestamp.
    pub fn get(&self, i: usize) -> (&[u8], u64) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (&self.bytes[start..self.ends[i]], self.times[i])
    }

    /// Iterates `(packet, now_us)` pairs in insertion order.
    pub fn iter(&self) -> PacketIter<'_> {
        PacketIter {
            arena: self,
            next: 0,
        }
    }

    /// Drops all packets, keeping the allocations.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.ends.clear();
        self.times.clear();
    }
}

impl<'a> IntoIterator for &'a PacketArena {
    type Item = (&'a [u8], u64);
    type IntoIter = PacketIter<'a>;

    fn into_iter(self) -> PacketIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`PacketArena`]'s `(packet, now_us)` pairs.
#[derive(Debug, Clone)]
pub struct PacketIter<'a> {
    arena: &'a PacketArena,
    next: usize,
}

impl<'a> Iterator for PacketIter<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.arena.len() {
            return None;
        }
        let item = self.arena.get(self.next);
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.arena.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PacketIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut arena = PacketArena::with_capacity(3, 4);
        arena.push(&[1, 2, 3], 10);
        arena.push(&[], 20);
        arena.push(&[4, 5], 30);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.total_bytes(), 5);
        assert_eq!(arena.get(0), (&[1u8, 2, 3][..], 10));
        assert_eq!(arena.get(1), (&[][..], 20));
        assert_eq!(arena.get(2), (&[4u8, 5][..], 30));
        let collected: Vec<_> = arena.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], (&[4u8, 5][..], 30));
        assert_eq!(arena.iter().len(), 3);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut arena = PacketArena::new();
        arena.push(&[9; 64], 1);
        let cap = arena.bytes.capacity();
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.total_bytes(), 0);
        assert_eq!(arena.bytes.capacity(), cap);
        arena.push(&[7], 2);
        assert_eq!(arena.get(0), (&[7u8][..], 2));
    }
}
