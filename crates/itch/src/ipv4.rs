//! IPv4 headers (no options), with checksum generation/verification.

use crate::WireError;

/// Length of an option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// Protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// A typed view over an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer, checking version, header length and total
    /// length.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated("ipv4 header"));
        }
        if b[0] >> 4 != 4 {
            return Err(WireError::BadValue("ipv4 version"));
        }
        let ihl = usize::from(b[0] & 0x0f) * 4;
        if ihl < HEADER_LEN || b.len() < ihl {
            return Err(WireError::BadLength("ipv4 ihl"));
        }
        let total = usize::from(u16::from_be_bytes([b[2], b[3]]));
        if total < ihl || total > b.len() {
            return Err(WireError::BadLength("ipv4 total length"));
        }
        Ok(Packet { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[0] & 0x0f) * 4
    }

    /// Total packet length per the header.
    pub fn total_len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.b()[2], self.b()[3]]))
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> u8 {
        self.b()[9]
    }

    /// Source address, big-endian u32.
    pub fn src(&self) -> u32 {
        crate::bytes::be_u32(self.b(), 12)
    }

    /// Destination address, big-endian u32.
    pub fn dst(&self) -> u32 {
        crate::bytes::be_u32(self.b(), 16)
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }

    /// Recomputes the header checksum and compares.
    pub fn verify_checksum(&self) -> bool {
        checksum(&self.b()[..self.header_len()]) == 0
    }

    /// Payload after the header, bounded by total length.
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len()..self.total_len()]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Writes an option-less header (version 4, IHL 5) and fixes the
    /// checksum. `payload_len` is the transport payload length.
    pub fn set_header(&mut self, src: u32, dst: u32, protocol: u8, ttl: u8, payload_len: usize) {
        let total = (HEADER_LEN + payload_len) as u16;
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[2..4].copy_from_slice(&total.to_be_bytes());
        b[4..8].copy_from_slice(&[0, 0, 0, 0]); // id, flags, frag
        b[8] = ttl;
        b[9] = protocol;
        b[10] = 0;
        b[11] = 0;
        b[12..16].copy_from_slice(&src.to_be_bytes());
        b[16..20].copy_from_slice(&dst.to_be_bytes());
        let csum = checksum(&b[..HEADER_LEN]);
        b[10..12].copy_from_slice(&csum.to_be_bytes());
    }
}

/// RFC 1071 internet checksum over a byte slice (returns the value that
/// makes the region sum to zero, i.e. what belongs in the checksum
/// field when that field is zeroed first — or 0 when verifying an
/// already-checksummed region).
///
/// SWAR inner loop: the one's-complement sum is associative and
/// commutative, so 4-byte words are accumulated into a u64 (two 16-bit
/// columns per load, carries deferred) and folded once at the end —
/// identical to the 2-byte-at-a-time reference for every input.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u64 = 0;
    let mut words = data.chunks_exact(4);
    for c in &mut words {
        let w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        sum += u64::from(w >> 16) + u64::from(w & 0xffff);
    }
    let mut pairs = words.remainder().chunks_exact(2);
    for c in &mut pairs {
        sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = pairs.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds an IPv4 packet around a payload.
pub fn build(src: u32, dst: u32, protocol: u8, ttl: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    {
        let (hdr, body) = buf.split_at_mut(HEADER_LEN);
        body.copy_from_slice(payload);
        let _ = hdr;
    }
    let mut p = Packet {
        buffer: &mut buf[..],
    };
    p.set_header(src, dst, protocol, ttl, payload.len());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0x0a00_0001;
    const DST: u32 = 0xefc0_0001; // 239.192.0.1 multicast

    #[test]
    fn build_and_parse_roundtrip() {
        let buf = build(SRC, DST, PROTO_UDP, 16, b"data");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src(), SRC);
        assert_eq!(p.dst(), DST);
        assert_eq!(p.protocol(), PROTO_UDP);
        assert_eq!(p.ttl(), 16);
        assert_eq!(p.total_len(), 24);
        assert_eq!(p.payload(), b"data");
        assert!(p.verify_checksum());
    }

    #[test]
    fn detects_corruption() {
        let mut buf = build(SRC, DST, PROTO_UDP, 16, b"data");
        buf[8] = buf[8].wrapping_add(1); // flip TTL
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_bad_version_and_lengths() {
        let mut buf = build(SRC, DST, PROTO_UDP, 16, b"data");
        buf[0] = 0x65; // version 6
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadValue("ipv4 version")
        );

        let mut buf2 = build(SRC, DST, PROTO_UDP, 16, b"data");
        buf2[2] = 0xff; // total length beyond the buffer
        buf2[3] = 0xff;
        assert_eq!(
            Packet::new_checked(&buf2[..]).unwrap_err(),
            WireError::BadLength("ipv4 total length")
        );

        assert_eq!(
            Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated("ipv4 header")
        );
    }

    #[test]
    fn payload_is_bounded_by_total_len() {
        // Buffer longer than total_len (ethernet padding): payload stops
        // at total_len.
        let mut buf = build(SRC, DST, PROTO_UDP, 16, b"data");
        buf.extend_from_slice(&[0u8; 6]);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload(), b"data");
    }

    #[test]
    fn checksum_odd_length() {
        // Odd-length regions pad with a zero byte.
        assert_eq!(checksum(&[0xff]), !0xff00u16);
    }

    /// Byte-pair reference implementation of RFC 1071.
    fn checksum_scalar(data: &[u8]) -> u16 {
        let mut sum: u32 = 0;
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    #[test]
    fn swar_checksum_matches_scalar_reference() {
        // Lengths hitting every remainder shape (0–3 tail bytes) and
        // values that force carries through both folds.
        let mut data = Vec::new();
        let mut x: u32 = 0x9E37_79B9;
        for len in 0..64usize {
            data.clear();
            for _ in 0..len {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                data.push((x >> 24) as u8);
            }
            assert_eq!(checksum(&data), checksum_scalar(&data), "len {len}");
        }
        assert_eq!(checksum(&[0xff; 33]), checksum_scalar(&[0xff; 33]));
    }
}
