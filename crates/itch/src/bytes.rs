//! Total fixed-width byte readers for the wire-format views.
//!
//! Every accessor in this crate sits behind a `new_checked`/length
//! guard, so in-bounds reads are the only ones that ever happen on the
//! hot path — but the robustness contract for the data plane is
//! stronger: *no byte input may panic*, even through a misused view.
//! These helpers make out-of-range reads total (missing bytes read as
//! zero) instead of panicking, which is what lets the parse path carry
//! a crate-wide `clippy::unwrap_used` deny.

/// Reads `N` bytes at `off`, zero-filling anything past the end.
pub(crate) fn arr<const N: usize>(b: &[u8], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    if let Some(src) = off.checked_add(N).and_then(|end| b.get(off..end)) {
        out.copy_from_slice(src);
    }
    out
}

/// Big-endian u32 at `off` (zero-filled when out of range).
pub(crate) fn be_u32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes(arr(b, off))
}

/// Big-endian u64 at `off` (zero-filled when out of range).
pub(crate) fn be_u64(b: &[u8], off: usize) -> u64 {
    u64::from_be_bytes(arr(b, off))
}

/// Little-endian u32 at `off` (zero-filled when out of range).
pub(crate) fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(arr(b, off))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads_match_std() {
        let b = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(be_u32(&b, 1), u32::from_be_bytes([2, 3, 4, 5]));
        assert_eq!(be_u64(&b, 0), u64::from_be_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(le_u32(&b, 5), u32::from_le_bytes([6, 7, 8, 9]));
    }

    #[test]
    fn out_of_bounds_reads_are_zero_not_panics() {
        let b = [0xFFu8; 4];
        assert_eq!(be_u32(&b, 1), 0);
        assert_eq!(be_u64(&b, 0), 0);
        assert_eq!(arr::<6>(&b, usize::MAX), [0u8; 6]);
    }
}
