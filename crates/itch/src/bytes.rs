//! Total fixed-width byte readers for the wire-format views.
//!
//! Every accessor in this crate sits behind a `new_checked`/length
//! guard, so in-bounds reads are the only ones that ever happen on the
//! hot path — but the robustness contract for the data plane is
//! stronger: *no byte input may panic*, even through a misused view.
//! These helpers make out-of-range reads total (missing bytes read as
//! zero) instead of panicking, which is what lets the parse path carry
//! a crate-wide `clippy::unwrap_used` deny.

/// Reads `N` bytes at `off`, zero-filling anything past the end.
pub(crate) fn arr<const N: usize>(b: &[u8], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    if let Some(src) = off.checked_add(N).and_then(|end| b.get(off..end)) {
        out.copy_from_slice(src);
    }
    out
}

/// Big-endian u32 at `off` (zero-filled when out of range).
pub(crate) fn be_u32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes(arr(b, off))
}

/// Big-endian u64 at `off` (zero-filled when out of range).
pub(crate) fn be_u64(b: &[u8], off: usize) -> u64 {
    u64::from_be_bytes(arr(b, off))
}

/// Little-endian u32 at `off` (zero-filled when out of range).
pub(crate) fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(arr(b, off))
}

// ---------------------------------------------------------------------
// SWAR loads: single wide reads with masked tails.
//
// The `load_*` family below is the hot-path variant of the readers
// above: an in-bounds read compiles to one unaligned word load (the
// bounds check is a single compare), and a read crossing the end of
// the buffer zero-fills the *missing* bytes only ("masked tail")
// instead of zeroing the whole value. Behind the decoders' length
// guards both semantics coincide — every call site reads fully
// in-bounds — but the masked-tail definition is total on arbitrary
// `(bytes, offset)` inputs, which is what the property tests exercise.
//
// Each SWAR load has a `*_scalar` twin: the obviously-correct
// byte-at-a-time fold that serves as the executable specification the
// proptests compare against. Keep the pairs in sync.
// ---------------------------------------------------------------------

/// Reads `N` bytes at `off` into a word buffer, zero-filling only the
/// bytes past the end of `b` (the masked tail).
#[inline]
fn load_tail<const N: usize>(b: &[u8], off: usize) -> [u8; N] {
    let mut w = [0u8; N];
    let avail = b.len().saturating_sub(off).min(N);
    if avail > 0 {
        w[..avail].copy_from_slice(&b[off..off + avail]);
    }
    w
}

/// Big-endian u64 at `off` as one wide load; bytes past the end of the
/// buffer read as zero (masked tail).
#[inline]
pub fn load_be_u64(b: &[u8], off: usize) -> u64 {
    match off.checked_add(8).and_then(|end| b.get(off..end)) {
        Some(s) => u64::from_be_bytes(s.try_into().unwrap_or([0u8; 8])),
        None => u64::from_be_bytes(load_tail::<8>(b, off)),
    }
}

/// Big-endian u32 at `off` with a masked tail.
#[inline]
pub fn load_be_u32(b: &[u8], off: usize) -> u32 {
    match off.checked_add(4).and_then(|end| b.get(off..end)) {
        Some(s) => u32::from_be_bytes(s.try_into().unwrap_or([0u8; 4])),
        None => u32::from_be_bytes(load_tail::<4>(b, off)),
    }
}

/// Big-endian u16 at `off` with a masked tail.
#[inline]
pub fn load_be_u16(b: &[u8], off: usize) -> u16 {
    match off.checked_add(2).and_then(|end| b.get(off..end)) {
        Some(s) => u16::from_be_bytes(s.try_into().unwrap_or([0u8; 2])),
        None => u16::from_be_bytes(load_tail::<2>(b, off)),
    }
}

/// Little-endian u32 at `off` with a masked tail.
#[inline]
pub fn load_le_u32(b: &[u8], off: usize) -> u32 {
    match off.checked_add(4).and_then(|end| b.get(off..end)) {
        Some(s) => u32::from_le_bytes(s.try_into().unwrap_or([0u8; 4])),
        None => u32::from_le_bytes(load_tail::<4>(b, off)),
    }
}

/// Byte-at-a-time reference for [`load_be_u64`]: missing bytes fold in
/// as zero at the low end (big-endian tail).
pub fn load_be_u64_scalar(b: &[u8], off: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..8 {
        let byte = off.checked_add(i).and_then(|j| b.get(j)).map_or(0, |&x| x);
        v = (v << 8) | u64::from(byte);
    }
    v
}

/// Byte-at-a-time reference for [`load_be_u32`].
pub fn load_be_u32_scalar(b: &[u8], off: usize) -> u32 {
    let mut v = 0u32;
    for i in 0..4 {
        let byte = off.checked_add(i).and_then(|j| b.get(j)).map_or(0, |&x| x);
        v = (v << 8) | u32::from(byte);
    }
    v
}

/// Byte-at-a-time reference for [`load_be_u16`].
pub fn load_be_u16_scalar(b: &[u8], off: usize) -> u16 {
    let mut v = 0u16;
    for i in 0..2 {
        let byte = off.checked_add(i).and_then(|j| b.get(j)).map_or(0, |&x| x);
        v = (v << 8) | u16::from(byte);
    }
    v
}

/// Byte-at-a-time reference for [`load_le_u32`]: missing bytes fold in
/// as zero at the high end (little-endian tail).
pub fn load_le_u32_scalar(b: &[u8], off: usize) -> u32 {
    let mut v = 0u32;
    for i in 0..4 {
        let byte = off.checked_add(i).and_then(|j| b.get(j)).map_or(0, |&x| x);
        v |= u32::from(byte) << (8 * i);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads_match_std() {
        let b = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(be_u32(&b, 1), u32::from_be_bytes([2, 3, 4, 5]));
        assert_eq!(be_u64(&b, 0), u64::from_be_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(le_u32(&b, 5), u32::from_le_bytes([6, 7, 8, 9]));
    }

    #[test]
    fn out_of_bounds_reads_are_zero_not_panics() {
        let b = [0xFFu8; 4];
        assert_eq!(be_u32(&b, 1), 0);
        assert_eq!(be_u64(&b, 0), 0);
        assert_eq!(arr::<6>(&b, usize::MAX), [0u8; 6]);
    }

    #[test]
    fn swar_loads_match_std_in_bounds() {
        let b = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(
            load_be_u64(&b, 1),
            u64::from_be_bytes([2, 3, 4, 5, 6, 7, 8, 9])
        );
        assert_eq!(load_be_u32(&b, 0), u32::from_be_bytes([1, 2, 3, 4]));
        assert_eq!(load_be_u16(&b, 7), u16::from_be_bytes([8, 9]));
        assert_eq!(load_le_u32(&b, 5), u32::from_le_bytes([6, 7, 8, 9]));
    }

    #[test]
    fn swar_tails_mask_missing_bytes() {
        // Unlike `arr`, partial overruns keep the in-range bytes.
        let b = [0xAAu8, 0xBB];
        assert_eq!(load_be_u32(&b, 1), 0xBB00_0000);
        assert_eq!(load_be_u32_scalar(&b, 1), 0xBB00_0000);
        assert_eq!(load_le_u32(&b, 1), 0x0000_00BB);
        assert_eq!(load_be_u16(&b, 2), 0);
        assert_eq!(load_be_u64(&b, usize::MAX), 0);
        assert_eq!(load_be_u64_scalar(&b, usize::MAX), 0);
    }

    #[test]
    fn swar_loads_agree_with_scalar_twins_on_edges() {
        let b: Vec<u8> = (1..=11u8).collect();
        for off in 0..16usize {
            assert_eq!(
                load_be_u64(&b, off),
                load_be_u64_scalar(&b, off),
                "u64 @{off}"
            );
            assert_eq!(
                load_be_u32(&b, off),
                load_be_u32_scalar(&b, off),
                "u32 @{off}"
            );
            assert_eq!(
                load_be_u16(&b, off),
                load_be_u16_scalar(&b, off),
                "u16 @{off}"
            );
            assert_eq!(
                load_le_u32(&b, off),
                load_le_u32_scalar(&b, off),
                "le32 @{off}"
            );
        }
    }
}
