//! # camus-itch — market-data wire formats
//!
//! The paper's running example and evaluation workload: "Nasdaq
//! publishes market data feeds using the ITCH format. ITCH data is
//! delivered to subscribers as a stream of IP multicast packets, each
//! containing a UDP datagram. Inside each UDP datagram is a MoldUDP
//! header containing a sequence number, a session ID, and a count of
//! the number of ITCH messages inside the packet" (§2).
//!
//! This crate implements that stack from Ethernet up, smoltcp-style:
//! zero-copy typed *views* over byte buffers with checked accessors,
//! plus owned message structs and encoders:
//!
//! * [`ether`] — Ethernet II frames;
//! * [`ipv4`] — IPv4 headers (with checksum);
//! * [`udp`] — UDP datagrams;
//! * [`moldudp`] — MoldUDP64 session framing (session, sequence,
//!   message count, length-prefixed blocks);
//! * [`itch`] — ITCH 5.0 messages: add-order (the paper's experiment
//!   subject) plus system-event, order-executed, order-cancel,
//!   order-delete and trade;
//! * [`feed`] — end-to-end feed packet building and parsing;
//! * [`pcap`] — capture-file writing/reading for tcpdump/Wireshark
//!   interoperability and trace replay;
//! * [`arena`] — a flat packet arena (contiguous bytes + offsets) for
//!   allocation-cheap trace storage and replay.
//!
//! Robustness contract: decoding raw bytes never panics. Every view is
//! gated by `new_checked`, fixed-width reads go through total helpers,
//! and the crate denies `clippy::unwrap_used`/`expect_used` outside
//! tests, so truncated or garbage frames surface as [`WireError`]s (or
//! zero-filled reads through a misused view), never as worker crashes.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod bytes;
pub mod ether;
pub mod feed;
pub mod ipv4;
pub mod itch;
pub mod moldudp;
pub mod pcap;
pub mod udp;

pub use arena::PacketArena;
pub use feed::{build_feed_packet, parse_feed_packet, FeedConfig};
pub use itch::{AddOrder, ItchMessage, Side};

use std::fmt;

/// Errors from decoding market-data packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header of the named layer.
    Truncated(&'static str),
    /// A length field is inconsistent with the buffer.
    BadLength(&'static str),
    /// A field holds a value the decoder cannot interpret.
    BadValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(l) => write!(f, "truncated {l}"),
            WireError::BadLength(l) => write!(f, "bad length in {l}"),
            WireError::BadValue(l) => write!(f, "bad value in {l}"),
        }
    }
}

impl std::error::Error for WireError {}
