//! Recursive-descent parser for subscription rules.
//!
//! Grammar (paper Fig. 1, with conventional precedence `!` > `∧` > `∨`):
//!
//! ```text
//! program ::= rule (";" | "\n")* ...      (rules separated by newlines/`;`
//!                                          at the top level of a program)
//! rule    ::= cond ":" action (";" action)*
//! cond    ::= or
//! or      ::= and ("∨" and)*
//! and     ::= not ("∧" not)*
//! not     ::= "!" not | "(" cond ")" | atom | "true"
//! atom    ::= operand relop constant
//! operand ::= ident "." ident | ident "(" [ident ["." ident]] ")" | ident
//! action  ::= "fwd" "(" int ("," int)* ")"
//!           | "drop" "(" ")"
//!           | ident "←" updatefn
//! ```

use crate::ast::{Action, AggFn, Atom, Cond, FieldRef, Operand, RelOp, Rule, UpdateFn, Value};
use crate::error::ParseError;
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a single rule, e.g. `stock == GOOGL : fwd(1)`.
pub fn parse_rule(input: &str) -> Result<Rule, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let rule = p.rule()?;
    p.expect_eof()?;
    Ok(rule)
}

/// Parses a program: one rule per line (blank lines and comments
/// allowed). Rules may span lines as long as each ends before the next
/// condition starts; in practice write one rule per line.
pub fn parse_program(input: &str) -> Result<Vec<Rule>, ParseError> {
    let mut rules = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("//") {
            continue;
        }
        let rule =
            parse_rule(trimmed).map_err(|e| ParseError::at(e.message, i as u32 + 1, e.col))?;
        rules.push(rule);
    }
    Ok(rules)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.here();
        ParseError::at(msg, l, c)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                want.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {}", self.peek().describe())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            t => Err(self.err(format!("expected identifier, found {}", t.describe()))),
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let condition = self.cond()?;
        self.expect(&Tok::Colon)?;
        let mut actions = vec![self.action()?];
        while matches!(self.peek(), Tok::Semi) {
            self.bump();
            actions.push(self.action()?);
        }
        Ok(Rule { condition, actions })
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.not_expr()?;
        while matches!(self.peek(), Tok::And) {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Cond, ParseError> {
        if matches!(self.peek(), Tok::Not) {
            self.bump();
            return Ok(self.not_expr()?.not());
        }
        if matches!(self.peek(), Tok::LParen) {
            // Parenthesized sub-condition.
            self.bump();
            let c = self.cond()?;
            self.expect(&Tok::RParen)?;
            return Ok(c);
        }
        if matches!(self.peek(), Tok::Ident(s) if s == "true") {
            self.bump();
            return Ok(Cond::True);
        }
        self.atom().map(Cond::Atom)
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let operand = self.operand()?;
        let op = match self.bump() {
            Tok::Lt => RelOp::Lt,
            Tok::Gt => RelOp::Gt,
            Tok::EqEq => RelOp::Eq,
            Tok::Le => RelOp::Le,
            Tok::Ge => RelOp::Ge,
            Tok::Ne => RelOp::Ne,
            t => {
                return Err(self.err(format!(
                    "expected relational operator, found {}",
                    t.describe()
                )))
            }
        };
        let value = match self.bump() {
            Tok::Int(n) => Value::Int(n),
            Tok::Ident(s) => Value::Symbol(s),
            Tok::Str(s) => Value::Symbol(s),
            t => return Err(self.err(format!("expected constant, found {}", t.describe()))),
        };
        Ok(Atom { operand, op, value })
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        let first = self.ident()?;
        match self.peek() {
            Tok::Dot => {
                self.bump();
                let field = self.ident()?;
                Ok(Operand::Field(FieldRef::qualified(first, field)))
            }
            Tok::LParen => {
                // Aggregate macro: avg(price), count().
                let func = AggFn::from_name(&first)
                    .ok_or_else(|| self.err(format!("unknown aggregate function `{first}`")))?;
                self.bump();
                let field = if matches!(self.peek(), Tok::RParen) {
                    None
                } else {
                    Some(self.field_ref()?)
                };
                self.expect(&Tok::RParen)?;
                Ok(Operand::Agg { func, field })
            }
            _ => {
                // Ambiguous shorthand: a bare identifier is a header field
                // unless it names an aggregate-function-free state variable;
                // resolution against the spec happens in camus-core. We tag
                // lexically: known aggregate names without parens are errors.
                if AggFn::from_name(&first).is_some() {
                    Err(self.err(format!("aggregate `{first}` requires parentheses")))
                } else {
                    Ok(Operand::Field(FieldRef::short(first)))
                }
            }
        }
    }

    fn field_ref(&mut self) -> Result<FieldRef, ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Tok::Dot) {
            self.bump();
            let field = self.ident()?;
            Ok(FieldRef::qualified(first, field))
        } else {
            Ok(FieldRef::short(first))
        }
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        let name = self.ident()?;
        match (name.as_str(), self.peek().clone()) {
            ("fwd", Tok::LParen) => {
                self.bump();
                let mut ports = Vec::new();
                loop {
                    match self.bump() {
                        Tok::Int(n) => {
                            let port = u16::try_from(n)
                                .map_err(|_| self.err(format!("port {n} out of range")))?;
                            ports.push(port);
                        }
                        t => {
                            return Err(
                                self.err(format!("expected port number, found {}", t.describe()))
                            )
                        }
                    }
                    match self.bump() {
                        Tok::Comma => continue,
                        Tok::RParen => break,
                        t => {
                            return Err(
                                self.err(format!("expected `,` or `)`, found {}", t.describe()))
                            )
                        }
                    }
                }
                Ok(Action::Fwd(ports))
            }
            ("drop", Tok::LParen) => {
                self.bump();
                self.expect(&Tok::RParen)?;
                Ok(Action::Drop)
            }
            (_, Tok::Arrow) => {
                self.bump();
                let func = self.update_fn()?;
                Ok(Action::StateUpdate { var: name, func })
            }
            (_, t) => Err(self.err(format!(
                "expected action (fwd/drop/state update), found `{name}` then {}",
                t.describe()
            ))),
        }
    }

    fn update_fn(&mut self) -> Result<UpdateFn, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "incr" => {
                self.expect(&Tok::LParen)?;
                self.expect(&Tok::RParen)?;
                Ok(UpdateFn::Increment)
            }
            "add" => {
                self.expect(&Tok::LParen)?;
                let f = self.field_ref()?;
                self.expect(&Tok::RParen)?;
                Ok(UpdateFn::AddField(f))
            }
            "set" => {
                self.expect(&Tok::LParen)?;
                match self.bump() {
                    Tok::Int(n) => {
                        self.expect(&Tok::RParen)?;
                        Ok(UpdateFn::SetConst(n))
                    }
                    Tok::Ident(first) => {
                        let f = if matches!(self.peek(), Tok::Dot) {
                            self.bump();
                            let field = self.ident()?;
                            FieldRef::qualified(first, field)
                        } else {
                            FieldRef::short(first)
                        };
                        self.expect(&Tok::RParen)?;
                        Ok(UpdateFn::SetField(f))
                    }
                    t => Err(self.err(format!(
                        "expected constant or field, found {}",
                        t.describe()
                    ))),
                }
            }
            other => Err(self.err(format!("unknown update function `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ip_rule_from_paper() {
        // The paper writes IP addresses as dotted constants; our concrete
        // syntax takes the numeric form of any constant.
        let r = parse_rule("ip.dst == 3232235521 : fwd(1)").unwrap();
        assert_eq!(r.actions, vec![Action::Fwd(vec![1])]);
        match &r.condition {
            Cond::Atom(a) => {
                assert_eq!(a.operand, Operand::Field(FieldRef::qualified("ip", "dst")));
                assert_eq!(a.op, RelOp::Eq);
                assert_eq!(a.value, Value::Int(3_232_235_521));
            }
            c => panic!("unexpected condition {c:?}"),
        }
    }

    #[test]
    fn parses_stock_rule() {
        let r = parse_rule("stock == GOOGL : fwd(1,2,3)").unwrap();
        assert_eq!(r.actions, vec![Action::Fwd(vec![1, 2, 3])]);
    }

    #[test]
    fn parses_stateful_rule() {
        let r = parse_rule("stock == GOOGL ∧ avg(price) > 50 : fwd(1)").unwrap();
        match &r.condition {
            Cond::And(_, rhs) => match rhs.as_ref() {
                Cond::Atom(a) => {
                    assert_eq!(
                        a.operand,
                        Operand::Agg {
                            func: AggFn::Avg,
                            field: Some(FieldRef::short("price"))
                        }
                    );
                }
                c => panic!("unexpected rhs {c:?}"),
            },
            c => panic!("unexpected condition {c:?}"),
        }
    }

    #[test]
    fn precedence_not_over_and_over_or() {
        let r = parse_rule("!a == 1 and b == 2 or c == 3 : drop()").unwrap();
        // ((!a==1) ∧ b==2) ∨ c==3
        match &r.condition {
            Cond::Or(lhs, _) => match lhs.as_ref() {
                Cond::And(l, _) => assert!(matches!(l.as_ref(), Cond::Not(_))),
                c => panic!("unexpected lhs {c:?}"),
            },
            c => panic!("unexpected condition {c:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let r = parse_rule("a == 1 and (b == 2 or c == 3) : drop()").unwrap();
        match &r.condition {
            Cond::And(_, rhs) => assert!(matches!(rhs.as_ref(), Cond::Or(_, _))),
            c => panic!("unexpected condition {c:?}"),
        }
    }

    #[test]
    fn parses_multiple_actions() {
        let r = parse_rule("stock == GOOGL : fwd(1); my_counter <- incr()").unwrap();
        assert_eq!(r.actions.len(), 2);
        assert_eq!(
            r.actions[1],
            Action::StateUpdate {
                var: "my_counter".into(),
                func: UpdateFn::Increment
            }
        );
    }

    #[test]
    fn parses_state_variable_predicate() {
        // A declared counter used as a bare operand parses as a Field
        // shorthand; camus-core resolves it to a state variable by name.
        let r = parse_rule("my_counter > 10 : fwd(2)").unwrap();
        assert!(matches!(r.condition, Cond::Atom(_)));
    }

    #[test]
    fn parses_true_condition() {
        let r = parse_rule("true : fwd(7)").unwrap();
        assert_eq!(r.condition, Cond::True);
    }

    #[test]
    fn parses_program_with_comments_and_blanks() {
        let prog = "\n# market data fan-out\nstock == GOOGL : fwd(1)\n\nstock == MSFT : fwd(2)  \n";
        let rules = parse_program(prog).unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn program_errors_carry_line_numbers() {
        let err = parse_program("stock == GOOGL : fwd(1)\nstock == : fwd(2)").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_rule("a == 1 : fwd(1) garbage").is_err());
    }

    #[test]
    fn rejects_unknown_aggregate() {
        assert!(parse_rule("median(price) > 3 : fwd(1)").is_err());
    }

    #[test]
    fn rejects_bare_aggregate_name() {
        assert!(parse_rule("avg > 3 : fwd(1)").is_err());
    }

    #[test]
    fn rejects_missing_action() {
        assert!(parse_rule("a == 1").is_err());
        assert!(parse_rule("a == 1 :").is_err());
    }

    #[test]
    fn rejects_port_out_of_range() {
        assert!(parse_rule("a == 1 : fwd(70000)").is_err());
    }

    #[test]
    fn parses_quoted_symbols() {
        let r = parse_rule("stock == \"BRK.A\" : fwd(1)").unwrap();
        match &r.condition {
            Cond::Atom(a) => assert_eq!(a.value, Value::Symbol("BRK.A".into())),
            c => panic!("unexpected condition {c:?}"),
        }
    }

    #[test]
    fn parses_update_functions() {
        let r = parse_rule("a == 1 : v <- add(price); w <- set(5); x <- set(hdr.f)").unwrap();
        assert_eq!(r.actions.len(), 3);
        assert_eq!(
            r.actions[2],
            Action::StateUpdate {
                var: "x".into(),
                func: UpdateFn::SetField(FieldRef::qualified("hdr", "f"))
            }
        );
    }
}
