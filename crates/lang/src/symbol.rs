//! Fixed-width symbol encoding.
//!
//! ITCH stock tickers are 8-byte, space-padded, left-justified ASCII
//! fields. Exact-match comparisons against a symbolic constant such as
//! `GOOGL` therefore compare the field's raw bytes against the padded
//! encoding. This module provides the canonical encoding/decoding used
//! consistently by the compiler, the workload generators and the ITCH
//! codec.

/// Encodes a symbol into the value of a big-endian field of
/// `field_bits` bits (left-justified, space-padded ASCII).
///
/// Symbols longer than the field are truncated; `field_bits` is rounded
/// down to a whole number of bytes (ITCH string fields are byte-aligned)
/// and capped at 64.
///
/// ```
/// use camus_lang::symbol::encode_symbol;
/// assert_eq!(encode_symbol("A", 16), u64::from_be_bytes([0,0,0,0,0,0,b'A',b' ']));
/// ```
pub fn encode_symbol(sym: &str, field_bits: u32) -> u64 {
    let nbytes = ((field_bits.min(64)) / 8).max(1) as usize;
    let mut bytes = [b' '; 8];
    for (i, b) in sym.bytes().take(nbytes).enumerate() {
        bytes[i] = b;
    }
    let mut v: u64 = 0;
    for &b in bytes.iter().take(nbytes) {
        v = (v << 8) | u64::from(b);
    }
    v
}

/// Decodes a field value back into the symbol it encodes (trailing
/// padding stripped). Inverse of [`encode_symbol`] for ASCII symbols
/// that fit the field.
pub fn decode_symbol(value: u64, field_bits: u32) -> String {
    let nbytes = ((field_bits.min(64)) / 8).max(1) as usize;
    let mut out = String::with_capacity(nbytes);
    for i in (0..nbytes).rev() {
        let b = ((value >> (8 * i)) & 0xff) as u8;
        out.push(b as char);
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_googl_in_64_bits() {
        let v = encode_symbol("GOOGL", 64);
        assert_eq!(
            v.to_be_bytes(),
            [b'G', b'O', b'O', b'G', b'L', b' ', b' ', b' ']
        );
    }

    #[test]
    fn roundtrips() {
        for s in ["A", "GOOGL", "MSFT", "BRK", "ABCDEFGH"] {
            assert_eq!(decode_symbol(encode_symbol(s, 64), 64), s);
        }
    }

    #[test]
    fn truncates_to_field_width() {
        assert_eq!(
            decode_symbol(encode_symbol("ABCDEFGHIJ", 64), 64),
            "ABCDEFGH"
        );
        assert_eq!(decode_symbol(encode_symbol("ABCD", 16), 16), "AB");
    }

    #[test]
    fn encoding_preserves_lexicographic_order() {
        // Space-padded big-endian encoding orders symbols lexicographically
        // (for symbols over the ASCII range above space), which matters for
        // range predicates over symbol fields.
        let mut syms = ["MSFT", "AAPL", "GOOGL", "ORCL", "AMZN"];
        let mut by_code = syms;
        syms.sort();
        by_code.sort_by_key(|s| encode_symbol(s, 64));
        assert_eq!(syms, by_code);
    }

    #[test]
    fn zero_width_is_clamped() {
        // Degenerate widths fall back to one byte rather than panicking.
        assert_eq!(encode_symbol("A", 0), u64::from(b'A'));
    }
}
