//! Tokenizer for the subscription language and the annotated spec.
//!
//! The lexer accepts both the paper's mathematical notation (`∧`, `∨`,
//! `!`, `←`) and ASCII equivalents (`and`/`&&`, `or`/`||`, `not`/`!`,
//! `<-`), so rules can be written exactly as they appear in the paper.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or bare symbol constant (`stock`, `GOOGL`, `avg`).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Quoted string literal (`"GOOGL"`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `∧`, `and`, `&&`
    And,
    /// `∨`, `or`, `||`
    Or,
    /// `!`, `not`
    Not,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    EqEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
    /// `←` or `<-`
    Arrow,
    /// `@` (spec annotations)
    At,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input (synthesized once).
    Eof,
}

impl Tok {
    /// Short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Eof => "end of input".to_string(),
            t => format!("`{}`", t.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Dot => ".",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Semi => ";",
            Tok::And => "and",
            Tok::Or => "or",
            Tok::Not => "!",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::EqEq => "==",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::Ne => "!=",
            Tok::Arrow => "<-",
            Tok::At => "@",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            _ => "?",
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenizes `input`. `#` and `//` start line comments.
pub fn lex(input: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! push {
        ($t:expr, $l:expr, $c:expr) => {
            toks.push(SpannedTok {
                tok: $t,
                line: $l,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let ch = chars.next().unwrap();
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            ch
        };
        match c {
            c if c.is_whitespace() => {
                bump(&mut chars);
            }
            '#' => {
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    bump(&mut chars);
                }
            }
            '/' => {
                bump(&mut chars);
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        bump(&mut chars);
                    }
                } else {
                    return Err(ParseError::at("unexpected `/`", tl, tc));
                }
            }
            '(' => {
                bump(&mut chars);
                push!(Tok::LParen, tl, tc);
            }
            ')' => {
                bump(&mut chars);
                push!(Tok::RParen, tl, tc);
            }
            '.' => {
                bump(&mut chars);
                push!(Tok::Dot, tl, tc);
            }
            ',' => {
                bump(&mut chars);
                push!(Tok::Comma, tl, tc);
            }
            ':' => {
                bump(&mut chars);
                push!(Tok::Colon, tl, tc);
            }
            ';' => {
                bump(&mut chars);
                push!(Tok::Semi, tl, tc);
            }
            '@' => {
                bump(&mut chars);
                push!(Tok::At, tl, tc);
            }
            '{' => {
                bump(&mut chars);
                push!(Tok::LBrace, tl, tc);
            }
            '}' => {
                bump(&mut chars);
                push!(Tok::RBrace, tl, tc);
            }
            '∧' => {
                bump(&mut chars);
                push!(Tok::And, tl, tc);
            }
            '∨' => {
                bump(&mut chars);
                push!(Tok::Or, tl, tc);
            }
            '←' => {
                bump(&mut chars);
                push!(Tok::Arrow, tl, tc);
            }
            '&' => {
                bump(&mut chars);
                if chars.peek() == Some(&'&') {
                    bump(&mut chars);
                    push!(Tok::And, tl, tc);
                } else {
                    return Err(ParseError::at("expected `&&`", tl, tc));
                }
            }
            '|' => {
                bump(&mut chars);
                if chars.peek() == Some(&'|') {
                    bump(&mut chars);
                    push!(Tok::Or, tl, tc);
                } else {
                    return Err(ParseError::at("expected `||`", tl, tc));
                }
            }
            '!' => {
                bump(&mut chars);
                if chars.peek() == Some(&'=') {
                    bump(&mut chars);
                    push!(Tok::Ne, tl, tc);
                } else {
                    push!(Tok::Not, tl, tc);
                }
            }
            '<' => {
                bump(&mut chars);
                match chars.peek() {
                    Some('=') => {
                        bump(&mut chars);
                        push!(Tok::Le, tl, tc);
                    }
                    Some('-') => {
                        bump(&mut chars);
                        push!(Tok::Arrow, tl, tc);
                    }
                    _ => push!(Tok::Lt, tl, tc),
                }
            }
            '>' => {
                bump(&mut chars);
                if chars.peek() == Some(&'=') {
                    bump(&mut chars);
                    push!(Tok::Ge, tl, tc);
                } else {
                    push!(Tok::Gt, tl, tc);
                }
            }
            '=' => {
                bump(&mut chars);
                if chars.peek() == Some(&'=') {
                    bump(&mut chars);
                    push!(Tok::EqEq, tl, tc);
                } else {
                    return Err(ParseError::at("expected `==`", tl, tc));
                }
            }
            '"' => {
                bump(&mut chars);
                let mut s = String::new();
                loop {
                    match chars.peek() {
                        None => return Err(ParseError::at("unterminated string", tl, tc)),
                        Some('"') => {
                            bump(&mut chars);
                            break;
                        }
                        Some(_) => s.push(bump(&mut chars)),
                    }
                }
                push!(Tok::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                let mut overflow = false;
                while let Some(&c2) = chars.peek() {
                    if let Some(d) = c2.to_digit(10) {
                        bump(&mut chars);
                        let (m, o1) = n.overflowing_mul(10);
                        let (a, o2) = m.overflowing_add(u64::from(d));
                        overflow |= o1 || o2;
                        n = a;
                    } else if c2 == '_' {
                        bump(&mut chars); // digit separator
                    } else {
                        break;
                    }
                }
                if overflow {
                    return Err(ParseError::at("integer literal overflows u64", tl, tc));
                }
                // Dotted-quad IPv4 literal: 192.168.0.1 lexes as one
                // integer (big-endian, as the data plane matches it).
                if chars.peek() == Some(&'.') {
                    let mut octets = vec![n];
                    while chars.peek() == Some(&'.') && octets.len() < 4 {
                        bump(&mut chars); // '.'
                        let mut oct: u64 = 0;
                        let mut any = false;
                        while let Some(&c2) = chars.peek() {
                            if let Some(d) = c2.to_digit(10) {
                                bump(&mut chars);
                                oct = oct * 10 + u64::from(d);
                                any = true;
                                if oct > 255 {
                                    return Err(ParseError::at("IPv4 octet exceeds 255", tl, tc));
                                }
                            } else {
                                break;
                            }
                        }
                        if !any {
                            return Err(ParseError::at("malformed IPv4 literal", tl, tc));
                        }
                        octets.push(oct);
                    }
                    if octets.len() != 4 || octets[0] > 255 {
                        return Err(ParseError::at("malformed IPv4 literal", tl, tc));
                    }
                    let v = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
                    push!(Tok::Int(v), tl, tc);
                } else {
                    push!(Tok::Int(n), tl, tc);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        s.push(bump(&mut chars));
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "and" => push!(Tok::And, tl, tc),
                    "or" => push!(Tok::Or, tl, tc),
                    "not" => push!(Tok::Not, tl, tc),
                    _ => push!(Tok::Ident(s), tl, tc),
                }
            }
            other => {
                return Err(ParseError::at(
                    format!("unexpected character `{other}`"),
                    tl,
                    tc,
                ))
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_paper_rule() {
        let t = toks("stock == GOOGL ∧ avg(price) > 50 : fwd(1)");
        assert_eq!(
            t,
            vec![
                Tok::Ident("stock".into()),
                Tok::EqEq,
                Tok::Ident("GOOGL".into()),
                Tok::And,
                Tok::Ident("avg".into()),
                Tok::LParen,
                Tok::Ident("price".into()),
                Tok::RParen,
                Tok::Gt,
                Tok::Int(50),
                Tok::Colon,
                Tok::Ident("fwd".into()),
                Tok::LParen,
                Tok::Int(1),
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn ascii_and_unicode_connectives_agree() {
        assert_eq!(toks("a ∧ b ∨ !c"), toks("a and b or not c"));
        assert_eq!(toks("a && b || !c"), toks("a and b or not c"));
    }

    #[test]
    fn arrow_forms_agree() {
        assert_eq!(toks("v ← f"), toks("v <- f"));
    }

    #[test]
    fn tracks_positions_across_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("a # hi\nb // there\nc"), toks("a b c"));
    }

    #[test]
    fn digit_separators_allowed() {
        assert_eq!(toks("1_000_000"), vec![Tok::Int(1_000_000), Tok::Eof]);
    }

    #[test]
    fn lexes_dotted_quad_ipv4() {
        assert_eq!(toks("192.168.0.1"), vec![Tok::Int(0xc0a8_0001), Tok::Eof]);
        assert_eq!(
            toks("ip.dst == 10.0.0.1"),
            vec![
                Tok::Ident("ip".into()),
                Tok::Dot,
                Tok::Ident("dst".into()),
                Tok::EqEq,
                Tok::Int(0x0a00_0001),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn rejects_bad_ipv4_literals() {
        assert!(lex("256.0.0.1").is_err());
        assert!(lex("10.0.0").is_err());
        assert!(lex("10.0.0.999").is_err());
        assert!(lex("10..0.0.1").is_err());
    }

    #[test]
    fn rejects_overflowing_literal() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn rejects_stray_equal() {
        let err = lex("a = b").unwrap_err();
        assert!(err.message.contains("=="), "{err}");
    }

    #[test]
    fn lexes_strings() {
        assert_eq!(
            toks("\"GOO GL\""),
            vec![Tok::Str("GOO GL".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }
}
