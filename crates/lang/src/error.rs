//! Error types for parsing subscriptions and message-format specs.

use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

impl ParseError {
    /// Builds an error at an explicit position.
    pub fn at(message: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_position() {
        let e = ParseError::at("unexpected `)`", 3, 14);
        assert_eq!(e.to_string(), "3:14: unexpected `)`");
    }
}
