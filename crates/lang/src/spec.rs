//! Message-format specification (paper Fig. 2).
//!
//! The specification extends a P4-14 `header_type` declaration with
//! annotations naming the fields that subscriptions may predicate on and
//! the state variables the application needs:
//!
//! ```text
//! header_type itch_add_order_t {
//!     fields {
//!         shares: 32;
//!         stock: 64;
//!         price: 32;
//!     }
//! }
//! header itch_add_order_t add_order;
//!
//! @query_field(add_order.shares)
//! @query_field(add_order.price)
//! @query_field_exact(add_order.stock)
//! @query_counter(my_counter, 100)
//! ```
//!
//! `@query_field` marks a field for range matching (compiled to TCAM
//! unless optimized away); `@query_field_exact` requests exact/SRAM
//! matching; `@query_counter(name, window_us)` declares a tumbling-window
//! state variable (§3.1).

use std::collections::HashMap;

use crate::ast::FieldRef;
use crate::error::ParseError;
use crate::lexer::{lex, SpannedTok, Tok};

/// A field inside a `header_type` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Width in bits (1..=64 for queryable fields; wider fields may be
    /// declared but not queried).
    pub bits: u32,
    /// Bit offset of the field from the start of its header.
    pub bit_offset: u32,
}

/// A `header_type` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderType {
    /// Type name, e.g. `itch_add_order_t`.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDecl>,
}

impl HeaderType {
    /// Total size of the header in bits.
    pub fn total_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.bits).sum()
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A `header <type> <instance>;` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderInstance {
    /// Header type name.
    pub type_name: String,
    /// Instance name used in annotations and rules.
    pub name: String,
}

/// How a queryable field should be matched on the switch (§3.2,
/// "Resource Optimizations": the user can guide the compiler by
/// specifying a matching type for each field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchHint {
    /// Range matching (default): supports `<`, `>`, `==`; placed in TCAM
    /// unless the low-resolution mapping applies.
    Range,
    /// Exact matching (`_exact` suffix): supports only `==`/`!=`; placed
    /// in SRAM.
    Exact,
}

/// A field declared queryable via `@query_field`/`@query_field_exact`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryField {
    /// Header instance and field.
    pub field: FieldRef,
    /// Requested match kind.
    pub hint: MatchHint,
    /// Width in bits, resolved from the header type.
    pub bits: u32,
    /// Bit offset within the header instance.
    pub bit_offset: u32,
}

/// A `@query_counter(name, window_us)` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDecl {
    /// State-variable name.
    pub name: String,
    /// Tumbling-window size in microseconds.
    pub window_us: u64,
}

/// A parsed and resolved message-format specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    /// Declared header types by name.
    pub header_types: Vec<HeaderType>,
    /// Declared header instances in declaration (= parse) order.
    pub instances: Vec<HeaderInstance>,
    /// Queryable fields in annotation order.
    pub query_fields: Vec<QueryField>,
    /// Declared state counters.
    pub counters: Vec<CounterDecl>,
}

impl Spec {
    /// Looks up a header type by name.
    pub fn header_type(&self, name: &str) -> Option<&HeaderType> {
        self.header_types.iter().find(|h| h.name == name)
    }

    /// Looks up a header instance by name.
    pub fn instance(&self, name: &str) -> Option<&HeaderInstance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// Resolves a (possibly shorthand) field reference from a rule to a
    /// queryable field. Shorthand `stock` resolves if exactly one
    /// instance has a queryable field of that name.
    pub fn resolve(&self, fr: &FieldRef) -> Option<&QueryField> {
        match &fr.header {
            Some(h) => self.query_fields.iter().find(|q| {
                q.field.header.as_deref() == Some(h.as_str()) && q.field.field == fr.field
            }),
            None => {
                let mut hits = self
                    .query_fields
                    .iter()
                    .filter(|q| q.field.field == fr.field);
                let first = hits.next()?;
                if hits.next().is_some() {
                    None // ambiguous shorthand
                } else {
                    Some(first)
                }
            }
        }
    }

    /// Looks up a counter declaration by name.
    pub fn counter(&self, name: &str) -> Option<&CounterDecl> {
        self.counters.iter().find(|c| c.name == name)
    }
}

/// Parses a message-format specification (Fig. 2 syntax).
pub fn parse_spec(input: &str) -> Result<Spec, ParseError> {
    let toks = lex(input)?;
    let mut p = SpecParser { toks, pos: 0 };
    p.spec()
}

struct SpecParser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl SpecParser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.here();
        ParseError::at(msg, l, c)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                want.describe(),
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            t => Err(self.err(format!("expected identifier, found {}", t.describe()))),
        }
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(n)
            }
            t => Err(self.err(format!("expected integer, found {}", t.describe()))),
        }
    }

    fn spec(&mut self) -> Result<Spec, ParseError> {
        let mut spec = Spec::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) if kw == "header_type" => {
                    self.bump();
                    let h = self.header_type()?;
                    if spec.header_type(&h.name).is_some() {
                        return Err(self.err(format!("duplicate header_type `{}`", h.name)));
                    }
                    spec.header_types.push(h);
                }
                Tok::Ident(kw) if kw == "header" => {
                    self.bump();
                    let type_name = self.ident()?;
                    let name = self.ident()?;
                    self.expect(&Tok::Semi)?;
                    if spec.header_type(&type_name).is_none() {
                        return Err(self.err(format!("unknown header type `{type_name}`")));
                    }
                    if spec.instance(&name).is_some() {
                        return Err(self.err(format!("duplicate header instance `{name}`")));
                    }
                    spec.instances.push(HeaderInstance { type_name, name });
                }
                Tok::At => {
                    self.bump();
                    self.annotation(&mut spec)?;
                }
                t => return Err(self.err(format!("expected declaration, found {}", t.describe()))),
            }
        }
        Ok(spec)
    }

    fn header_type(&mut self) -> Result<HeaderType, ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let kw = self.ident()?;
        if kw != "fields" {
            return Err(self.err(format!("expected `fields`, found `{kw}`")));
        }
        self.expect(&Tok::LBrace)?;
        let mut fields: Vec<FieldDecl> = Vec::new();
        let mut seen: HashMap<String, ()> = HashMap::new();
        let mut offset = 0u32;
        while !matches!(self.peek(), Tok::RBrace) {
            let fname = self.ident()?;
            self.expect(&Tok::Colon)?;
            let bits = self.int()?;
            self.expect(&Tok::Semi)?;
            if bits == 0 || bits > 1 << 20 {
                return Err(self.err(format!("field `{fname}` has invalid width {bits}")));
            }
            if seen.insert(fname.clone(), ()).is_some() {
                return Err(self.err(format!("duplicate field `{fname}`")));
            }
            fields.push(FieldDecl {
                name: fname,
                bits: bits as u32,
                bit_offset: offset,
            });
            offset += bits as u32;
        }
        self.expect(&Tok::RBrace)?; // fields
        self.expect(&Tok::RBrace)?; // header_type
        Ok(HeaderType { name, fields })
    }

    fn annotation(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "query_field" | "query_field_exact" => {
                let hint = if name.ends_with("_exact") {
                    MatchHint::Exact
                } else {
                    MatchHint::Range
                };
                self.expect(&Tok::LParen)?;
                let inst = self.ident()?;
                self.expect(&Tok::Dot)?;
                let field = self.ident()?;
                self.expect(&Tok::RParen)?;
                let instance = spec
                    .instance(&inst)
                    .ok_or_else(|| self.err(format!("unknown header instance `{inst}`")))?
                    .clone();
                let htype = spec
                    .header_type(&instance.type_name)
                    .expect("instance referenced an existing type");
                let decl = htype
                    .field(&field)
                    .ok_or_else(|| self.err(format!("header `{inst}` has no field `{field}`")))?;
                if decl.bits > 64 {
                    return Err(self.err(format!(
                        "field `{inst}.{field}` is {} bits; queryable fields are at most 64",
                        decl.bits
                    )));
                }
                let qf = QueryField {
                    field: FieldRef::qualified(inst, field),
                    hint,
                    bits: decl.bits,
                    bit_offset: decl.bit_offset,
                };
                if spec.query_fields.iter().any(|q| q.field == qf.field) {
                    return Err(self.err(format!("field `{}` annotated twice", qf.field)));
                }
                spec.query_fields.push(qf);
                Ok(())
            }
            "query_counter" => {
                self.expect(&Tok::LParen)?;
                let cname = self.ident()?;
                self.expect(&Tok::Comma)?;
                let window_us = self.int()?;
                self.expect(&Tok::RParen)?;
                if spec.counter(&cname).is_some() {
                    return Err(self.err(format!("duplicate counter `{cname}`")));
                }
                spec.counters.push(CounterDecl {
                    name: cname,
                    window_us,
                });
                Ok(())
            }
            other => Err(self.err(format!("unknown annotation `@{other}`"))),
        }
    }
}

/// The ITCH add-order specification used throughout the paper (Fig. 2),
/// as a ready-made constant for examples and tests.
pub const ITCH_SPEC: &str = r#"
header_type itch_add_order_t {
    fields {
        msg_type: 8;
        stock_locate: 16;
        tracking_number: 16;
        timestamp: 48;
        order_ref: 64;
        buy_sell: 8;
        shares: 32;
        stock: 64;
        price: 32;
    }
}
header itch_add_order_t add_order;

@query_field(add_order.shares)
@query_field(add_order.price)
@query_field_exact(add_order.stock)
@query_field_exact(add_order.buy_sell)
@query_counter(my_counter, 100)
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_spec() {
        let s = parse_spec(ITCH_SPEC).unwrap();
        assert_eq!(s.header_types.len(), 1);
        assert_eq!(s.instances.len(), 1);
        assert_eq!(s.query_fields.len(), 4);
        assert_eq!(
            s.counters,
            vec![CounterDecl {
                name: "my_counter".into(),
                window_us: 100
            }]
        );
        let stock = s.resolve(&FieldRef::short("stock")).unwrap();
        assert_eq!(stock.hint, MatchHint::Exact);
        assert_eq!(stock.bits, 64);
        let shares = s.resolve(&FieldRef::short("shares")).unwrap();
        assert_eq!(shares.hint, MatchHint::Range);
    }

    #[test]
    fn computes_bit_offsets() {
        let s = parse_spec(ITCH_SPEC).unwrap();
        let h = s.header_type("itch_add_order_t").unwrap();
        assert_eq!(h.field("msg_type").unwrap().bit_offset, 0);
        assert_eq!(h.field("stock_locate").unwrap().bit_offset, 8);
        assert_eq!(
            h.field("shares").unwrap().bit_offset,
            8 + 16 + 16 + 48 + 64 + 8
        );
        assert_eq!(h.total_bits(), 288);
    }

    #[test]
    fn resolves_qualified_and_shorthand() {
        let s = parse_spec(ITCH_SPEC).unwrap();
        assert!(s
            .resolve(&FieldRef::qualified("add_order", "price"))
            .is_some());
        assert!(s.resolve(&FieldRef::short("price")).is_some());
        assert!(s.resolve(&FieldRef::short("nope")).is_none());
        assert!(s.resolve(&FieldRef::qualified("other", "price")).is_none());
    }

    #[test]
    fn ambiguous_shorthand_fails_resolution() {
        let src = r#"
            header_type a_t { fields { x: 8; } }
            header_type b_t { fields { x: 8; } }
            header a_t a;
            header b_t b;
            @query_field(a.x)
            @query_field(b.x)
        "#;
        let s = parse_spec(src).unwrap();
        assert!(s.resolve(&FieldRef::short("x")).is_none());
        assert!(s.resolve(&FieldRef::qualified("a", "x")).is_some());
    }

    #[test]
    fn rejects_unknown_instance_annotation() {
        let src = "header_type t { fields { x: 8; } }\n@query_field(missing.x)";
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn rejects_unknown_field_annotation() {
        let src = "header_type t { fields { x: 8; } }\nheader t h;\n@query_field(h.y)";
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn rejects_wide_query_field() {
        let src = "header_type t { fields { x: 128; } }\nheader t h;\n@query_field(h.x)";
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse_spec("header_type t { fields { x: 8; x: 8; } }").is_err());
        assert!(parse_spec(
            "header_type t { fields { x: 8; } }\nheader_type t { fields { y: 8; } }"
        )
        .is_err());
        let src = "header_type t { fields { x: 8; } }\nheader t h;\n@query_field(h.x)\n@query_field_exact(h.x)";
        assert!(parse_spec(src).is_err());
        assert!(parse_spec("@query_counter(c, 1)\n@query_counter(c, 2)").is_err());
    }

    #[test]
    fn rejects_unknown_annotation() {
        assert!(parse_spec("@frobnicate(x)").is_err());
    }

    #[test]
    fn rejects_zero_width_field() {
        assert!(parse_spec("header_type t { fields { x: 0; } }").is_err());
    }
}
