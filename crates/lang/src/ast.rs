//! Abstract syntax for the packet-subscription language (paper Fig. 1).
//!
//! ```text
//! r ::= c : a                          condition-action rule
//! c ::= c1 ∧ c2 | c1 ∨ c2 | !c1 | e    logical expression
//! e ::= p > n | p < n | p == n         relational expression
//! p ::= h.f | v                        header field or state variable
//! a ::= a1; a2 | fwd(n0..ni) | g       action
//! g ::= v ← f(v0..vj, h)               state-update function
//! ```

use std::fmt;

/// A reference to a packet header field, e.g. `add_order.stock` or the
/// shorthand `stock` (resolved against the message-format spec later).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// Header instance name; `None` when the shorthand form is used.
    pub header: Option<String>,
    /// Field name within the header.
    pub field: String,
}

impl FieldRef {
    /// Builds a fully-qualified reference `header.field`.
    pub fn qualified(header: impl Into<String>, field: impl Into<String>) -> Self {
        FieldRef {
            header: Some(header.into()),
            field: field.into(),
        }
    }

    /// Builds a shorthand reference `field`.
    pub fn short(field: impl Into<String>) -> Self {
        FieldRef {
            header: None,
            field: field.into(),
        }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.header {
            Some(h) => write!(f, "{}.{}", h, self.field),
            None => write!(f, "{}", self.field),
        }
    }
}

/// Aggregate macros usable on the left-hand side of a stateful predicate,
/// e.g. `avg(price) > 50`. The window semantics (tumbling, sized by the
/// matching `@query_counter` annotation) are supplied by the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Moving average of the argument field over the window.
    Avg,
    /// Sum of the argument field over the window.
    Sum,
    /// Number of matching packets in the window.
    Count,
    /// Minimum of the argument field over the window.
    Min,
    /// Maximum of the argument field over the window.
    Max,
}

impl AggFn {
    /// Parses an aggregate-function name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "avg" => AggFn::Avg,
            "sum" => AggFn::Sum,
            "count" => AggFn::Count,
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            _ => return None,
        })
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Avg => "avg",
            AggFn::Sum => "sum",
            AggFn::Count => "count",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The left-hand side `p` of a relational expression: a header field, a
/// named state variable, or an aggregate macro over a field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A packet header field, `h.f`.
    Field(FieldRef),
    /// A declared state variable, `v` (e.g. a `@query_counter`).
    StateVar(String),
    /// An aggregate macro, e.g. `avg(price)`. `field` is `None` for
    /// zero-argument macros such as `count()`.
    Agg {
        func: AggFn,
        field: Option<FieldRef>,
    },
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Field(fr) => write!(f, "{fr}"),
            Operand::StateVar(v) => write!(f, "{v}"),
            Operand::Agg {
                func,
                field: Some(fr),
            } => write!(f, "{func}({fr})"),
            Operand::Agg { func, field: None } => write!(f, "{func}()"),
        }
    }
}

/// Relational operators. The paper's surface grammar has `<`, `>`, `==`;
/// the remaining three arise from negation during normalization and are
/// accepted in the concrete syntax as a convenience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
}

impl RelOp {
    /// The operator satisfied by exactly the complement set of values.
    pub fn negated(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Gt => RelOp::Le,
            RelOp::Eq => RelOp::Ne,
            RelOp::Le => RelOp::Gt,
            RelOp::Ge => RelOp::Lt,
            RelOp::Ne => RelOp::Eq,
        }
    }

    /// Evaluates `lhs op rhs` on concrete values.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            RelOp::Lt => lhs < rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Eq => lhs == rhs,
            RelOp::Le => lhs <= rhs,
            RelOp::Ge => lhs >= rhs,
            RelOp::Ne => lhs != rhs,
        }
    }

    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Lt => "<",
            RelOp::Gt => ">",
            RelOp::Eq => "==",
            RelOp::Le => "<=",
            RelOp::Ge => ">=",
            RelOp::Ne => "!=",
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A constant on the right-hand side of a relational expression.
///
/// All packet fields are unsigned bit-vectors of at most 64 bits, so an
/// integer constant is a `u64`. String-typed fields (e.g. ITCH stock
/// tickers) compare against a [`Value::Symbol`], which is encoded to a
/// `u64` with [`crate::symbol::encode_symbol`] during compilation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An unsigned integer literal.
    Int(u64),
    /// A symbolic constant (bare identifier like `GOOGL` or a quoted
    /// string), encoded as space-padded ASCII in a fixed-width field.
    Symbol(String),
}

impl Value {
    /// The `u64` this constant compares as, given the width in bits of
    /// the field it is compared against.
    pub fn as_u64(&self, field_bits: u32) -> u64 {
        match self {
            Value::Int(n) => *n,
            Value::Symbol(s) => crate::symbol::encode_symbol(s, field_bits),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// An atomic predicate `p op n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left-hand side.
    pub operand: Operand,
    /// Relational operator.
    pub op: RelOp,
    /// Right-hand side constant.
    pub value: Value,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.operand, self.op, self.value)
    }
}

/// A rule condition: a logical expression over atomic predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// Conjunction `c1 ∧ c2`.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction `c1 ∨ c2`.
    Or(Box<Cond>, Box<Cond>),
    /// Negation `!c`.
    Not(Box<Cond>),
    /// An atomic predicate.
    Atom(Atom),
    /// The always-true condition (empty conjunction); matches every
    /// packet of the application's format. Written `true`.
    True,
}

impl Cond {
    /// Conjunction helper that avoids boxing noise at call sites.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Cond {
        Cond::Not(Box::new(self))
    }

    /// Number of atomic predicates in the expression tree.
    pub fn atom_count(&self) -> usize {
        match self {
            Cond::And(a, b) | Cond::Or(a, b) => a.atom_count() + b.atom_count(),
            Cond::Not(c) => c.atom_count(),
            Cond::Atom(_) => 1,
            Cond::True => 0,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(c) => write!(f, "!({c})"),
            Cond::Atom(a) => write!(f, "{a}"),
            Cond::True => write!(f, "true"),
        }
    }
}

/// An update function `f` in a state-update action `v ← f(...)`.
///
/// The paper's prototype dynamic compiler "only supports actions without
/// arguments" (§3.1); we additionally support the single-field forms the
/// static code generator emits for the aggregate macros.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UpdateFn {
    /// Increment the variable by one.
    Increment,
    /// Add the value of a packet field to the variable.
    AddField(FieldRef),
    /// Overwrite the variable with a constant.
    SetConst(u64),
    /// Overwrite the variable with the value of a packet field.
    SetField(FieldRef),
}

impl fmt::Display for UpdateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateFn::Increment => write!(f, "incr()"),
            UpdateFn::AddField(fr) => write!(f, "add({fr})"),
            UpdateFn::SetConst(n) => write!(f, "set({n})"),
            UpdateFn::SetField(fr) => write!(f, "set({fr})"),
        }
    }
}

/// A rule action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward the packet out the given switch ports (unicast when one
    /// port, multicast otherwise).
    Fwd(Vec<u16>),
    /// Explicitly drop the packet. A packet matched by no rule is also
    /// dropped; an explicit `drop()` documents intent and wins nothing.
    Drop,
    /// State update `v ← f(...)`, executed when the rule matches.
    StateUpdate { var: String, func: UpdateFn },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Fwd(ports) => {
                write!(f, "fwd(")?;
                for (i, p) in ports.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Action::Drop => write!(f, "drop()"),
            Action::StateUpdate { var, func } => write!(f, "{var} <- {func}"),
        }
    }
}

/// A full condition-action rule `c : a1; a2; ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Matching condition.
    pub condition: Cond,
    /// Actions executed when the condition holds. The switch executes the
    /// actions of *all* matching rules, in no particular order (§2).
    pub actions: Vec<Action>,
}

impl Rule {
    /// Convenience constructor.
    pub fn new(condition: Cond, actions: Vec<Action>) -> Self {
        Rule { condition, actions }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : ", self.condition)?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(field: &str, op: RelOp, v: u64) -> Cond {
        Cond::Atom(Atom {
            operand: Operand::Field(FieldRef::short(field)),
            op,
            value: Value::Int(v),
        })
    }

    #[test]
    fn relop_negation_is_involutive() {
        for op in [
            RelOp::Lt,
            RelOp::Gt,
            RelOp::Eq,
            RelOp::Le,
            RelOp::Ge,
            RelOp::Ne,
        ] {
            assert_eq!(op.negated().negated(), op);
        }
    }

    #[test]
    fn relop_negation_complements_eval() {
        for op in [
            RelOp::Lt,
            RelOp::Gt,
            RelOp::Eq,
            RelOp::Le,
            RelOp::Ge,
            RelOp::Ne,
        ] {
            for (l, r) in [(1u64, 2u64), (2, 2), (3, 2)] {
                assert_eq!(op.eval(l, r), !op.negated().eval(l, r), "{op} {l} {r}");
            }
        }
    }

    #[test]
    fn atom_count_walks_tree() {
        let c =
            atom("a", RelOp::Lt, 1).and(atom("b", RelOp::Gt, 2).or(atom("c", RelOp::Eq, 3)).not());
        assert_eq!(c.atom_count(), 3);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let r = Rule::new(
            atom("shares", RelOp::Lt, 60).and(atom("price", RelOp::Gt, 100)),
            vec![Action::Fwd(vec![1, 2])],
        );
        let printed = r.to_string();
        let reparsed = crate::parser::parse_rule(&printed).unwrap();
        assert_eq!(reparsed, r);
    }

    #[test]
    fn value_symbol_encodes_by_width() {
        let v = Value::Symbol("A".to_string());
        // 'A' = 0x41, left-justified in one byte.
        assert_eq!(v.as_u64(8), 0x41);
    }
}
