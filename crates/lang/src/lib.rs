//! # camus-lang — the packet-subscription language
//!
//! This crate implements the front end of the Camus compiler from
//! *Packet Subscriptions for Programmable ASICs* (HotNets 2018):
//!
//! * the **subscription language** of Figure 1 — condition/action filter
//!   rules with conjunction, disjunction, negation, the relational
//!   operators `<`, `>`, `==`, references to header fields and state
//!   variables, and forwarding / state-update actions
//!   ([`ast`], [`lexer`], [`parser`]);
//! * **disjunctive normalization** of rule conditions, the first step of
//!   dynamic compilation (§3.2) ([`dnf`]);
//! * the **message-format specification** of Figure 2 — a P4-style
//!   header declaration extended with `@query_field`,
//!   `@query_field_exact` and `@query_counter` annotations ([`spec`]);
//! * fixed-width **symbol encoding** used by exact-match string fields
//!   such as ITCH stock tickers ([`symbol`]).
//!
//! The output of this crate (parsed [`ast::Rule`]s and a resolved
//! [`spec::Spec`]) is consumed by `camus-bdd` and `camus-core`.
//!
//! ## Example
//!
//! ```
//! use camus_lang::parser::parse_rule;
//!
//! let rule = parse_rule("stock == GOOGL and avg(price) > 50 : fwd(1)").unwrap();
//! assert_eq!(rule.actions.len(), 1);
//! ```

pub mod ast;
pub mod dnf;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod spec;
pub mod symbol;

pub use ast::{Action, Atom, Cond, Operand, RelOp, Rule, Value};
pub use dnf::{to_dnf, Conjunction, Literal};
pub use error::ParseError;
pub use parser::{parse_program, parse_rule};
pub use spec::{parse_spec, Spec};
