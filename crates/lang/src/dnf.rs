//! Disjunctive normalization (§3.2: "The subscription rules are first
//! normalized into disjunctive form, yielding a set of independent rules
//! in which the condition in each rule consists of a conjunction of
//! atomic predicates.")
//!
//! Negations are pushed to the leaves (De Morgan) and then absorbed into
//! the relational operator (`!(x < n)` ⇒ `x >= n`), so a normalized
//! conjunction contains only positive literals over the six-operator
//! predicate alphabet. Trivially contradictory conjunctions (same
//! operand, disjoint constraints decidable without cross-atom reasoning)
//! are kept — the BDD's domain-specific reductions remove them — except
//! for syntactic `p == a ∧ p == b` with `a ≠ b`, which is dropped early
//! as an inexpensive win.

use crate::ast::{Atom, Cond, RelOp};

/// A positive literal in a normalized conjunction. After normalization
/// `positive` is always true for callers of [`to_dnf`]; the type keeps
/// the polarity explicit so intermediate stages can carry negations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The atomic predicate.
    pub atom: Atom,
    /// Polarity; `false` means the negation of `atom`.
    pub positive: bool,
}

/// A conjunction of literals. The empty conjunction is `true`.
pub type Conjunction = Vec<Literal>;

/// Upper bound on the number of conjunctions a single rule may normalize
/// to. DNF can be exponential in the worst case; a subscription that
/// trips this limit is almost certainly a bug in the subscriber.
pub const MAX_DNF_TERMS: usize = 1 << 16;

/// Error returned when normalization exceeds [`MAX_DNF_TERMS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfOverflow {
    /// Number of terms at the point the limit tripped.
    pub terms: usize,
}

impl std::fmt::Display for DnfOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DNF of condition exceeds {MAX_DNF_TERMS} conjunctions ({} and counting)",
            self.terms
        )
    }
}

impl std::error::Error for DnfOverflow {}

/// Normalizes a condition to disjunctive form: a set of conjunctions of
/// positive atomic predicates whose disjunction is equivalent to `cond`.
///
/// ```
/// use camus_lang::{parse_rule, to_dnf};
/// let r = parse_rule("a == 1 and (b == 2 or !(c < 3)) : fwd(1)").unwrap();
/// let dnf = to_dnf(&r.condition).unwrap();
/// assert_eq!(dnf.len(), 2); // {a==1, b==2} and {a==1, c>=3}
/// ```
pub fn to_dnf(cond: &Cond) -> Result<Vec<Conjunction>, DnfOverflow> {
    let nnf = push_negations(cond, false);
    let mut out = dnf_of_nnf(&nnf)?;
    for conj in &mut out {
        for lit in conj.iter_mut() {
            debug_assert!(lit.positive, "push_negations leaves only positive literals");
        }
    }
    out.retain(|c| !trivially_unsat(c));
    Ok(out)
}

/// Negation-normal form with polarity folded into operators.
fn push_negations(cond: &Cond, negate: bool) -> Cond {
    match (cond, negate) {
        (Cond::And(a, b), false) => push_negations(a, false).and(push_negations(b, false)),
        (Cond::And(a, b), true) => push_negations(a, true).or(push_negations(b, true)),
        (Cond::Or(a, b), false) => push_negations(a, false).or(push_negations(b, false)),
        (Cond::Or(a, b), true) => push_negations(a, true).and(push_negations(b, true)),
        (Cond::Not(c), n) => push_negations(c, !n),
        (Cond::Atom(a), false) => Cond::Atom(a.clone()),
        (Cond::Atom(a), true) => Cond::Atom(Atom {
            operand: a.operand.clone(),
            op: a.op.negated(),
            value: a.value.clone(),
        }),
        (Cond::True, false) => Cond::True,
        // `!true` is unsatisfiable; encode as an empty disjunction marker
        // using a contradictory pair is clumsy — use Or of nothing via a
        // sentinel: we return `Not(True)` and handle it in dnf_of_nnf.
        (Cond::True, true) => Cond::Not(Box::new(Cond::True)),
    }
}

fn dnf_of_nnf(cond: &Cond) -> Result<Vec<Conjunction>, DnfOverflow> {
    match cond {
        Cond::Or(a, b) => {
            let mut l = dnf_of_nnf(a)?;
            let r = dnf_of_nnf(b)?;
            l.extend(r);
            if l.len() > MAX_DNF_TERMS {
                return Err(DnfOverflow { terms: l.len() });
            }
            Ok(l)
        }
        Cond::And(a, b) => {
            let l = dnf_of_nnf(a)?;
            let r = dnf_of_nnf(b)?;
            let product = l.len().saturating_mul(r.len());
            if product > MAX_DNF_TERMS {
                return Err(DnfOverflow { terms: product });
            }
            let mut out = Vec::with_capacity(product);
            for cl in &l {
                for cr in &r {
                    let mut c = cl.clone();
                    c.extend(cr.iter().cloned());
                    out.push(c);
                }
            }
            Ok(out)
        }
        Cond::Atom(a) => Ok(vec![vec![Literal {
            atom: a.clone(),
            positive: true,
        }]]),
        Cond::True => Ok(vec![vec![]]),
        // Sentinel from push_negations: unsatisfiable.
        Cond::Not(inner) if matches!(inner.as_ref(), Cond::True) => Ok(vec![]),
        Cond::Not(_) => unreachable!("negations were pushed to the leaves"),
    }
}

/// Cheap syntactic contradiction check: two equality atoms on the same
/// operand with different constants.
fn trivially_unsat(conj: &Conjunction) -> bool {
    for (i, a) in conj.iter().enumerate() {
        if a.atom.op != RelOp::Eq {
            continue;
        }
        for b in conj.iter().skip(i + 1) {
            if b.atom.op == RelOp::Eq
                && b.atom.operand == a.atom.operand
                && b.atom.value != a.atom.value
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{FieldRef, Operand, Value};
    use crate::parser::parse_rule;

    fn cond(src: &str) -> Cond {
        parse_rule(&format!("{src} : fwd(1)")).unwrap().condition
    }

    fn atoms(conj: &Conjunction) -> Vec<String> {
        conj.iter().map(|l| l.atom.to_string()).collect()
    }

    #[test]
    fn single_atom_is_singleton() {
        let d = to_dnf(&cond("a == 1")).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(atoms(&d[0]), ["a == 1"]);
    }

    #[test]
    fn conjunction_stays_one_term() {
        let d = to_dnf(&cond("a == 1 and b < 2 and c > 3")).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].len(), 3);
    }

    #[test]
    fn disjunction_splits() {
        let d = to_dnf(&cond("a == 1 or b == 2")).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn distributes_and_over_or() {
        let d = to_dnf(&cond("(a == 1 or a == 2) and (b == 1 or b == 2)")).unwrap();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn negation_folds_into_operator() {
        let d = to_dnf(&cond("!(a < 5)")).unwrap();
        assert_eq!(atoms(&d[0]), ["a >= 5"]);
        let d = to_dnf(&cond("!(a == 5)")).unwrap();
        assert_eq!(atoms(&d[0]), ["a != 5"]);
    }

    #[test]
    fn de_morgan() {
        let d = to_dnf(&cond("!(a == 1 and b == 2)")).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(atoms(&d[0]), ["a != 1"]);
        assert_eq!(atoms(&d[1]), ["b != 2"]);

        let d = to_dnf(&cond("!(a == 1 or b == 2)")).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(atoms(&d[0]), ["a != 1", "b != 2"]);
    }

    #[test]
    fn double_negation_cancels() {
        let d = to_dnf(&cond("!!(a < 5)")).unwrap();
        assert_eq!(atoms(&d[0]), ["a < 5"]);
    }

    #[test]
    fn true_is_empty_conjunction() {
        let d = to_dnf(&Cond::True).unwrap();
        assert_eq!(d, vec![vec![]]);
    }

    #[test]
    fn not_true_is_empty_disjunction() {
        let d = to_dnf(&Cond::True.not()).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn drops_syntactic_contradictions() {
        let d = to_dnf(&cond("a == 1 and a == 2")).unwrap();
        assert!(d.is_empty());
        // ...but keeps range-level contradictions for the BDD to remove.
        let d = to_dnf(&cond("a < 1 and a > 2")).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn different_operands_never_contradict() {
        let a = Atom {
            operand: Operand::Field(FieldRef::short("a")),
            op: RelOp::Eq,
            value: Value::Int(1),
        };
        let b = Atom {
            operand: Operand::Field(FieldRef::short("b")),
            op: RelOp::Eq,
            value: Value::Int(2),
        };
        let conj: Conjunction = vec![
            Literal {
                atom: a,
                positive: true,
            },
            Literal {
                atom: b,
                positive: true,
            },
        ];
        assert!(!trivially_unsat(&conj));
    }

    #[test]
    fn overflow_guard_trips() {
        // (a==0 or a==1) and ... 17 times = 2^17 > MAX_DNF_TERMS.
        let mut src = String::from("(f0 == 0 or f0 == 1)");
        for i in 1..17 {
            src.push_str(&format!(" and (f{i} == 0 or f{i} == 1)"));
        }
        assert!(to_dnf(&cond(&src)).is_err());
    }
}
