//! `camus-bus` — the typed control protocol between `camusd` and its
//! clients (`camusctl`, the workload churn driver, tests).
//!
//! Everything here is `std`-only: the build environment has no registry
//! access, so the protocol is hand-rolled rather than serde-derived.
//! The wire format is deliberately boring — a 4-byte big-endian length
//! prefix, then a one-byte message tag, then fixed-order fields
//! (integers little-endian, strings and vectors length-prefixed). See
//! [`wire`] for the exact layout and DESIGN.md §17 for the protocol
//! contract (per-request acks, coalesced epochs, typed rejections).
//!
//! The same frame codec serves both directions; requests and replies
//! occupy disjoint tag ranges (`0x01..` vs `0x81..`) so a misdirected
//! frame fails to decode instead of being misinterpreted.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod proto;
pub mod wire;

pub use client::{BusAddr, BusClient, BusListener, BusStream};
pub use proto::{BusReply, BusRequest, RejectKind, StatsFrame};
pub use wire::{read_frame, write_frame, WireError, MAX_FRAME};
