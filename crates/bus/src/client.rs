//! Client-side connection handling: address parsing, the stream/
//! listener abstraction over Unix and TCP sockets, and [`BusClient`],
//! the blocking request/reply handle used by `camusctl`, the workload
//! driver and the tests.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use crate::proto::{BusReply, BusRequest};
use crate::wire::{read_frame, write_frame, WireError};

/// Where the bus lives: `unix:/run/camusd.sock` or `tcp:host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusAddr {
    /// Unix domain socket path.
    Unix(PathBuf),
    /// TCP host:port.
    Tcp(String),
}

impl BusAddr {
    /// Parses the `unix:PATH` / `tcp:HOST:PORT` notation. A bare
    /// `host:port` is accepted as TCP for convenience.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(BusAddr::Unix(PathBuf::from(path)));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        if hostport.rsplit_once(':').is_none() {
            return Err(format!(
                "bus address `{s}` is not unix:PATH or tcp:HOST:PORT"
            ));
        }
        Ok(BusAddr::Tcp(hostport.to_string()))
    }
}

impl fmt::Display for BusAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            BusAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
        }
    }
}

/// A connected bus stream, either transport.
pub enum BusStream {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix domain socket transport.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl BusStream {
    /// Connects to a daemon.
    pub fn connect(addr: &BusAddr) -> Result<Self, WireError> {
        match addr {
            BusAddr::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                // Small request/reply frames: Nagle would add ~40 ms
                // of delayed-ACK latency to every RPC.
                s.set_nodelay(true)?;
                Ok(BusStream::Tcp(s))
            }
            #[cfg(unix)]
            BusAddr::Unix(path) => Ok(BusStream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            BusAddr::Unix(_) => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))),
        }
    }
}

impl Read for BusStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            BusStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            BusStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for BusStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            BusStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            BusStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            BusStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            BusStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound server socket, either transport. The daemon owns this; it
/// lives here so client and server agree on one address grammar.
pub enum BusListener {
    /// TCP transport.
    Tcp(TcpListener),
    /// Unix domain socket transport (stale socket files are replaced).
    #[cfg(unix)]
    Unix(UnixListener),
}

impl BusListener {
    /// Binds the address. For Unix sockets a stale file from a previous
    /// run is removed first; for TCP, port 0 binds an ephemeral port —
    /// read the effective address back with [`BusListener::local_addr`].
    pub fn bind(addr: &BusAddr) -> Result<Self, WireError> {
        match addr {
            BusAddr::Tcp(hp) => Ok(BusListener::Tcp(TcpListener::bind(hp.as_str())?)),
            #[cfg(unix)]
            BusAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(BusListener::Unix(UnixListener::bind(path)?))
            }
            #[cfg(not(unix))]
            BusAddr::Unix(_) => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))),
        }
    }

    /// The effective bound address (resolves `tcp:host:0`).
    pub fn local_addr(&self) -> Result<BusAddr, WireError> {
        match self {
            BusListener::Tcp(l) => Ok(BusAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            BusListener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .unwrap_or_else(|| std::path::Path::new(""));
                Ok(BusAddr::Unix(path.to_path_buf()))
            }
        }
    }

    /// Switches the listener to non-blocking accepts so the daemon can
    /// poll a shutdown flag between them.
    pub fn set_nonblocking(&self, nb: bool) -> Result<(), WireError> {
        match self {
            BusListener::Tcp(l) => l.set_nonblocking(nb)?,
            #[cfg(unix)]
            BusListener::Unix(l) => l.set_nonblocking(nb)?,
        }
        Ok(())
    }

    /// Accepts one connection (non-blocking semantics follow the
    /// listener's mode; `WouldBlock` surfaces as `WireError::Io`).
    pub fn accept(&self) -> Result<BusStream, WireError> {
        match self {
            BusListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(BusStream::Tcp(s))
            }
            #[cfg(unix)]
            BusListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(BusStream::Unix(s))
            }
        }
    }
}

/// Blocking request/reply client. One request is in flight at a time;
/// the daemon replies in order on the same connection, so a plain
/// write-then-read is the whole protocol.
pub struct BusClient {
    stream: BusStream,
}

impl BusClient {
    /// Connects to a daemon bus.
    pub fn connect(addr: &BusAddr) -> Result<Self, WireError> {
        Ok(BusClient {
            stream: BusStream::connect(addr)?,
        })
    }

    /// Sends one request and waits for its reply.
    pub fn request(&mut self, req: &BusRequest) -> Result<BusReply, WireError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        BusReply::decode(&payload)
    }

    /// Convenience: `Ping` → `Pong` or error.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.request(&BusRequest::Ping)? {
            BusReply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience: `Stats` → frame or error.
    pub fn stats(&mut self) -> Result<crate::proto::StatsFrame, WireError> {
        match self.request(&BusRequest::Stats)? {
            BusReply::Stats(frame) => Ok(frame),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience: `Snapshot` → (generation, rules) or error.
    pub fn snapshot(&mut self) -> Result<(u64, Vec<String>), WireError> {
        match self.request(&BusRequest::Snapshot)? {
            BusReply::Snapshot { generation, rules } => Ok((generation, rules)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &BusReply) -> WireError {
    WireError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{BusReply, BusRequest};

    #[test]
    fn addr_grammar() {
        assert_eq!(
            BusAddr::parse("unix:/run/camusd.sock").unwrap(),
            BusAddr::Unix(PathBuf::from("/run/camusd.sock"))
        );
        assert_eq!(
            BusAddr::parse("tcp:127.0.0.1:9999").unwrap(),
            BusAddr::Tcp("127.0.0.1:9999".into())
        );
        assert_eq!(
            BusAddr::parse("127.0.0.1:0").unwrap(),
            BusAddr::Tcp("127.0.0.1:0".into())
        );
        assert!(BusAddr::parse("unix:").is_err());
        assert!(BusAddr::parse("just-a-host").is_err());
        assert_eq!(
            BusAddr::parse("unix:/a.sock").unwrap().to_string(),
            "unix:/a.sock"
        );
    }

    /// Request/reply over a real TCP loopback socket: one echo-ish
    /// server thread, frames both ways.
    #[test]
    fn tcp_loopback_request_reply() {
        let listener = BusListener::bind(&BusAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            loop {
                let payload = match read_frame(&mut conn) {
                    Ok(p) => p,
                    Err(WireError::Closed) => break,
                    Err(e) => panic!("server read: {e}"),
                };
                let reply = match BusRequest::decode(&payload).unwrap() {
                    BusRequest::Ping => BusReply::Pong,
                    BusRequest::Subscribe { rules } => BusReply::Ack {
                        generation: rules.len() as u64,
                        coalesced_with: 1,
                    },
                    _ => BusReply::ShuttingDown,
                };
                write_frame(&mut conn, &reply.encode()).unwrap();
            }
        });

        let mut client = BusClient::connect(&addr).unwrap();
        client.ping().unwrap();
        let reply = client
            .request(&BusRequest::Subscribe {
                rules: vec!["a : fwd(1)".into(), "b : fwd(2)".into()],
            })
            .unwrap();
        assert_eq!(
            reply,
            BusReply::Ack {
                generation: 2,
                coalesced_with: 1
            }
        );
        drop(client);
        server.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_loopback_request_reply() {
        let dir = std::env::temp_dir().join(format!("camus-bus-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("bus.sock");
        let listener = BusListener::bind(&BusAddr::Unix(sock.clone())).unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let payload = read_frame(&mut conn).unwrap();
            assert_eq!(BusRequest::decode(&payload).unwrap(), BusRequest::Ping);
            write_frame(&mut conn, &BusReply::Pong.encode()).unwrap();
        });
        let mut client = BusClient::connect(&BusAddr::Unix(sock.clone())).unwrap();
        client.ping().unwrap();
        drop(client);
        server.join().unwrap();
        let _ = std::fs::remove_file(&sock);
        let _ = std::fs::remove_dir(&dir);
    }
}
