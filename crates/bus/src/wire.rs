//! Frame codec and field primitives.
//!
//! A frame is `u32 BE payload-length` followed by the payload. The
//! payload's first byte is the message tag; the rest is a fixed field
//! sequence per tag:
//!
//! * integers: `u64`/`u32` little-endian,
//! * strings: `u32 LE` byte length + UTF-8 bytes,
//! * string vectors: `u32 LE` count + each string.
//!
//! Decoding is strict: unknown tags, truncated fields, oversized
//! frames, non-UTF-8 strings and trailing bytes are all typed errors —
//! a control channel should fail loudly, not limp along on a skewed
//! byte offset.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a single frame's payload, in bytes. A `Snapshot`
/// reply carries every installed rule as text, so this bounds the
/// subscription count one RPC can return (~4 MiB ≈ 80K rules); it also
/// caps what a malicious peer can make the daemon buffer.
pub const MAX_FRAME: usize = 4 << 20;

/// Decode/transport failure for one frame.
#[derive(Debug)]
pub enum WireError {
    /// Socket error (includes clean EOF mid-frame).
    Io(io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Length prefix exceeded [`MAX_FRAME`].
    TooLarge(usize),
    /// Payload ended before the field being decoded.
    Truncated,
    /// First payload byte is not a known message tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload had bytes left after the last field of its tag.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "bus i/o error: {e}"),
            WireError::Closed => write!(f, "bus connection closed"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last field"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed frame. Prefix and payload go out in a
/// single `write_all`: a two-segment write would hand TCP a lone
/// 4-byte packet, and the Nagle/delayed-ACK interaction turns every
/// RPC into two ~40 ms stalls.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::TooLarge(payload.len()));
    }
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. A clean EOF *before* the length
/// prefix is [`WireError::Closed`]; EOF mid-frame is an I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Err(WireError::Closed),
            0 => return Err(WireError::Io(io::ErrorKind::UnexpectedEof.into())),
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------- fields

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_strs(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

/// Cursor over a frame payload with typed take-or-`Truncated` reads.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub(crate) fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    pub(crate) fn strs(&mut self) -> Result<Vec<String>, WireError> {
        let count = self.u32()? as usize;
        // A count can claim more entries than the payload could hold;
        // cap the pre-allocation by the bytes actually present (each
        // entry needs at least its 4-byte length).
        let mut out = Vec::with_capacity(count.min(self.buf.len() / 4 + 1));
        for _ in 0..count {
            out.push(self.str()?);
        }
        Ok(out)
    }

    /// Decoding must consume the payload exactly.
    pub(crate) fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert!(matches!(read_frame(&mut cur), Err(WireError::Closed)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        let mut cur = &buf[..];
        assert!(matches!(read_frame(&mut cur), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn eof_mid_frame_is_an_io_error_not_closed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"abc"); // promised 8, delivered 3
        let mut cur = &buf[..];
        assert!(matches!(read_frame(&mut cur), Err(WireError::Io(_))));
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut out = Vec::new();
        put_str(&mut out, "rule");
        let mut r = Reader::new(&out);
        assert_eq!(r.str().unwrap(), "rule");
        r.finish().unwrap();

        let mut r = Reader::new(&out[..out.len() - 1]);
        assert!(matches!(r.str(), Err(WireError::Truncated)));

        let mut padded = out.clone();
        padded.push(0);
        let mut r = Reader::new(&padded);
        r.str().unwrap();
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes(1))));
    }

    #[test]
    fn non_utf8_string_is_a_typed_error() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&out);
        assert!(matches!(r.str(), Err(WireError::BadUtf8)));
    }
}
