//! Request/reply message types and their byte-level codecs.
//!
//! Tag space: requests `0x01..=0x7f`, replies `0x81..=0xff`. A frame
//! decoded with the wrong direction's decoder fails on [`BadTag`]
//! rather than aliasing onto another message.
//!
//! [`BadTag`]: crate::wire::WireError::BadTag

use crate::wire::{put_str, put_strs, put_u32, put_u64, Reader, WireError};

const REQ_PING: u8 = 0x01;
const REQ_SUBSCRIBE: u8 = 0x02;
const REQ_UNSUBSCRIBE: u8 = 0x03;
const REQ_SNAPSHOT: u8 = 0x04;
const REQ_STATS: u8 = 0x05;
const REQ_SHUTDOWN: u8 = 0x06;

const REP_PONG: u8 = 0x81;
const REP_ACK: u8 = 0x82;
const REP_REJECTED: u8 = 0x83;
const REP_SNAPSHOT: u8 = 0x84;
const REP_STATS: u8 = 0x85;
const REP_SHUTTING_DOWN: u8 = 0x86;

/// A client request. `Subscribe`/`Unsubscribe` carry rules as source
/// text in the subscription language — the daemon parses and compiles;
/// the printed form round-trips through `parse_rule` exactly, so text
/// is the canonical identity of a rule on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusRequest {
    /// Liveness / latency probe.
    Ping,
    /// Install these rules (one epoch, all-or-nothing per request).
    Subscribe { rules: Vec<String> },
    /// Remove these rules (matched by parsed-rule equality).
    Unsubscribe { rules: Vec<String> },
    /// Return the currently installed rule set.
    Snapshot,
    /// Return a [`StatsFrame`] of live counters.
    Stats,
    /// Ask the daemon to quiesce and exit.
    Shutdown,
}

/// Why a mutation was refused. Mirrors the daemon's error sources in
/// order: the parser, the compiler, ASIC admission control, the
/// engine's update plane, daemon shutdown, and internal faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Rule text failed to parse.
    Parse,
    /// Rule parsed but the incremental compiler refused it.
    Compile,
    /// The update compiled but failed ASIC admission — the running
    /// pipeline is unchanged (all-or-nothing).
    Admission,
    /// The engine's update plane failed (e.g. workers dead).
    Update,
    /// The daemon is shutting down and no longer accepts mutations.
    ShuttingDown,
    /// Daemon-side invariant failure; see the message.
    Internal,
}

impl RejectKind {
    fn to_byte(self) -> u8 {
        match self {
            RejectKind::Parse => 0,
            RejectKind::Compile => 1,
            RejectKind::Admission => 2,
            RejectKind::Update => 3,
            RejectKind::ShuttingDown => 4,
            RejectKind::Internal => 5,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => RejectKind::Parse,
            1 => RejectKind::Compile,
            2 => RejectKind::Admission,
            3 => RejectKind::Update,
            4 => RejectKind::ShuttingDown,
            5 => RejectKind::Internal,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

impl std::fmt::Display for RejectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectKind::Parse => "parse",
            RejectKind::Compile => "compile",
            RejectKind::Admission => "admission",
            RejectKind::Update => "update",
            RejectKind::ShuttingDown => "shutting-down",
            RejectKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Live daemon counters, one coherent sample. All monotonic unless
/// noted; rates come from diffing two frames client-side (`camusctl
/// stats --watch`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsFrame {
    /// Engine pipeline generation (== epochs published so far).
    pub generation: u64,
    /// Currently installed subscription count (gauge).
    pub active_rules: u64,
    /// Engine worker count (gauge, fixed at start).
    pub workers: u64,
    /// Packets submitted to the engine.
    pub packets: u64,
    /// `apply_update` epochs published.
    pub epochs: u64,
    /// Rules applied by accepted mutations (adds + removes).
    pub mutations_applied: u64,
    /// Mutation RPCs rejected (any [`RejectKind`]).
    pub mutations_rejected: u64,
    /// Mutation RPCs that shared their epoch with at least one other
    /// request — the numerator of the coalescing factor.
    pub requests_coalesced: u64,
    /// Total RPCs served on the bus.
    pub rpcs: u64,
    /// Clients connected right now (gauge).
    pub clients: u64,
    /// Milliseconds since the daemon started (gauge).
    pub uptime_ms: u64,
    /// Total nanoseconds spent inside `apply_update` epochs.
    pub apply_ns_total: u64,
    /// Number of timed `apply_update` spans.
    pub apply_count: u64,
}

impl StatsFrame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.generation,
            self.active_rules,
            self.workers,
            self.packets,
            self.epochs,
            self.mutations_applied,
            self.mutations_rejected,
            self.requests_coalesced,
            self.rpcs,
            self.clients,
            self.uptime_ms,
            self.apply_ns_total,
            self.apply_count,
        ] {
            put_u64(out, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StatsFrame {
            generation: r.u64()?,
            active_rules: r.u64()?,
            workers: r.u64()?,
            packets: r.u64()?,
            epochs: r.u64()?,
            mutations_applied: r.u64()?,
            mutations_rejected: r.u64()?,
            requests_coalesced: r.u64()?,
            rpcs: r.u64()?,
            clients: r.u64()?,
            uptime_ms: r.u64()?,
            apply_ns_total: r.u64()?,
            apply_count: r.u64()?,
        })
    }
}

/// A daemon reply. Every request gets exactly one reply, in order, on
/// the same connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusReply {
    /// Reply to [`BusRequest::Ping`].
    Pong,
    /// The mutation was applied. `generation` is the pipeline
    /// generation that now contains it; `coalesced_with` is how many
    /// requests (including this one) shared that epoch.
    Ack {
        generation: u64,
        coalesced_with: u32,
    },
    /// The mutation was refused; the running pipeline is unchanged.
    Rejected { kind: RejectKind, message: String },
    /// The installed rule set at `generation`.
    Snapshot { generation: u64, rules: Vec<String> },
    /// Reply to [`BusRequest::Stats`].
    Stats(StatsFrame),
    /// The daemon acknowledged [`BusRequest::Shutdown`] (or refused a
    /// request because it is already draining).
    ShuttingDown,
}

impl BusRequest {
    /// Encodes into a frame payload (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            BusRequest::Ping => out.push(REQ_PING),
            BusRequest::Subscribe { rules } => {
                out.push(REQ_SUBSCRIBE);
                put_strs(&mut out, rules);
            }
            BusRequest::Unsubscribe { rules } => {
                out.push(REQ_UNSUBSCRIBE);
                put_strs(&mut out, rules);
            }
            BusRequest::Snapshot => out.push(REQ_SNAPSHOT),
            BusRequest::Stats => out.push(REQ_STATS),
            BusRequest::Shutdown => out.push(REQ_SHUTDOWN),
        }
        out
    }

    /// Decodes a frame payload produced by [`BusRequest::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_PING => BusRequest::Ping,
            REQ_SUBSCRIBE => BusRequest::Subscribe { rules: r.strs()? },
            REQ_UNSUBSCRIBE => BusRequest::Unsubscribe { rules: r.strs()? },
            REQ_SNAPSHOT => BusRequest::Snapshot,
            REQ_STATS => BusRequest::Stats,
            REQ_SHUTDOWN => BusRequest::Shutdown,
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl BusReply {
    /// Encodes into a frame payload (tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            BusReply::Pong => out.push(REP_PONG),
            BusReply::Ack {
                generation,
                coalesced_with,
            } => {
                out.push(REP_ACK);
                put_u64(&mut out, *generation);
                put_u32(&mut out, *coalesced_with);
            }
            BusReply::Rejected { kind, message } => {
                out.push(REP_REJECTED);
                out.push(kind.to_byte());
                put_str(&mut out, message);
            }
            BusReply::Snapshot { generation, rules } => {
                out.push(REP_SNAPSHOT);
                put_u64(&mut out, *generation);
                put_strs(&mut out, rules);
            }
            BusReply::Stats(frame) => {
                out.push(REP_STATS);
                frame.encode_into(&mut out);
            }
            BusReply::ShuttingDown => out.push(REP_SHUTTING_DOWN),
        }
        out
    }

    /// Decodes a frame payload produced by [`BusReply::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let rep = match r.u8()? {
            REP_PONG => BusReply::Pong,
            REP_ACK => BusReply::Ack {
                generation: r.u64()?,
                coalesced_with: r.u32()?,
            },
            REP_REJECTED => {
                let kind = RejectKind::from_byte(r.u8()?)?;
                BusReply::Rejected {
                    kind,
                    message: r.str()?,
                }
            }
            REP_SNAPSHOT => BusReply::Snapshot {
                generation: r.u64()?,
                rules: r.strs()?,
            },
            REP_STATS => BusReply::Stats(StatsFrame::decode(&mut r)?),
            REP_SHUTTING_DOWN => BusReply::ShuttingDown,
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<BusRequest> {
        vec![
            BusRequest::Ping,
            BusRequest::Subscribe {
                rules: vec!["stock == GOOGL : fwd(1)".into(), String::new()],
            },
            BusRequest::Unsubscribe { rules: vec![] },
            BusRequest::Snapshot,
            BusRequest::Stats,
            BusRequest::Shutdown,
        ]
    }

    fn all_replies() -> Vec<BusReply> {
        vec![
            BusReply::Pong,
            BusReply::Ack {
                generation: u64::MAX,
                coalesced_with: 7,
            },
            BusReply::Rejected {
                kind: RejectKind::Admission,
                message: "too many TCAM entries".into(),
            },
            BusReply::Snapshot {
                generation: 3,
                rules: vec!["a : fwd(1)".into(), "b : fwd(2)".into()],
            },
            BusReply::Stats(StatsFrame {
                generation: 1,
                active_rules: 2,
                workers: 3,
                packets: 4,
                epochs: 5,
                mutations_applied: 6,
                mutations_rejected: 7,
                requests_coalesced: 8,
                rpcs: 9,
                clients: 10,
                uptime_ms: 11,
                apply_ns_total: 12,
                apply_count: 13,
            }),
            BusReply::ShuttingDown,
        ]
    }

    #[test]
    fn every_request_roundtrips() {
        for req in all_requests() {
            let back = BusRequest::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn every_reply_roundtrips() {
        for rep in all_replies() {
            let back = BusReply::decode(&rep.encode()).unwrap();
            assert_eq!(back, rep);
        }
    }

    #[test]
    fn directions_do_not_alias() {
        // A reply payload must not decode as a request, and vice versa.
        for rep in all_replies() {
            assert!(matches!(
                BusRequest::decode(&rep.encode()),
                Err(WireError::BadTag(_))
            ));
        }
        for req in all_requests() {
            assert!(matches!(
                BusReply::decode(&req.encode()),
                Err(WireError::BadTag(_))
            ));
        }
    }

    #[test]
    fn every_reject_kind_roundtrips() {
        for kind in [
            RejectKind::Parse,
            RejectKind::Compile,
            RejectKind::Admission,
            RejectKind::Update,
            RejectKind::ShuttingDown,
            RejectKind::Internal,
        ] {
            let rep = BusReply::Rejected {
                kind,
                message: kind.to_string(),
            };
            assert_eq!(BusReply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn truncated_and_padded_payloads_fail_closed() {
        let payload = BusReply::Snapshot {
            generation: 9,
            rules: vec!["x : fwd(3)".into()],
        }
        .encode();
        for cut in 1..payload.len() {
            assert!(
                BusReply::decode(&payload[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut padded = payload;
        padded.push(0);
        assert!(matches!(
            BusReply::decode(&padded),
            Err(WireError::TrailingBytes(1))
        ));
    }
}
