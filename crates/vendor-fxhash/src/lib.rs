//! Vendored, std-only FxHash-style hasher.
//!
//! The workspace builds offline, so the `rustc-hash`/`fxhash` crates
//! cannot be pulled from a registry; this crate provides the small
//! subset the compiler's hot maps need. The algorithm is the classic
//! Firefox/rustc "Fx" mix: fold each machine word into the state with
//! a rotate + xor + multiply by a large odd constant. It is *not*
//! DoS-resistant — it trades that for being several times faster than
//! SipHash on the short fixed-width keys (node triples, packed memo
//! keys, id pairs) that dominate BDD construction, which is exactly
//! the trade hash-consed stores want.
//!
//! Drop-in usage mirrors the real crates:
//!
//! ```
//! use fxhash::FxHashMap;
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(7, 1);
//! assert_eq!(m[&7], 1);
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Large odd constant from the golden ratio, as used by rustc's FxHash
/// (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using Fx hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using Fx hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value to a `u64` with Fx (for hand-rolled bucket maps
/// that key on a precomputed hash, e.g. slice interning without an
/// owned key).
#[inline]
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(31)), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i.wrapping_mul(31))], u64::from(i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash_one(&0xDEADu64), hash_one(&0xDEADu64));
        // Sequential keys must not collapse onto few buckets.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..256u64 {
            low_bits.insert(hash_one(&i) >> 56);
        }
        assert!(low_bits.len() > 32, "top bits too clustered");
    }

    #[test]
    fn unaligned_byte_tails_differ() {
        assert_ne!(hash_one("abcdefghi"), hash_one("abcdefghj"));
        assert_ne!(hash_one(&[1u8, 2, 3][..]), hash_one(&[1u8, 2, 4][..]));
    }
}
