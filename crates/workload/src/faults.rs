//! Deterministic fault-injection plans for the robustness soak tests.
//!
//! A [`FaultPlan`] is generated from a clean packet trace and a seed:
//! it mutates a chosen fraction of the packets on the wire (truncation,
//! single-bit flips — the corruptions a total parse path must absorb as
//! typed drops) and scripts control-plane and worker faults by
//! submission sequence number (worker panics, worker deaths, stalls).
//! Everything is a pure function of the seed, so a failing soak run
//! reproduces exactly.
//!
//! The plan is engine-agnostic: it produces plain seq sets which the
//! test wires into the engine's `FaultInjection` hooks, and the mutated
//! trace is fed identically to the engine under test and the
//! sequential oracle, so corruption never makes the comparison
//! ambiguous — both sides see the same bytes.

use std::collections::HashSet;

use camus_lang::ast::Rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::itch_subs::{generate_itch_subscriptions, ItchSubsConfig};

/// One on-the-wire corruption applied to a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// The packet was cut down to its first `kept` bytes.
    Truncate {
        /// Bytes kept (strictly less than the original length).
        kept: usize,
    },
    /// One bit was flipped in place.
    BitFlip {
        /// Byte offset of the flip.
        byte: usize,
        /// Bit index within the byte (0 = LSB).
        bit: u8,
    },
}

/// Fault-plan knobs. Fractions are per-packet probabilities; scripted
/// fault counts are drawn without replacement from the trace's seq
/// space.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// RNG seed; the whole plan is a pure function of it.
    pub seed: u64,
    /// Probability a packet is truncated.
    pub truncate_fraction: f64,
    /// Probability a packet gets a single-bit flip.
    pub bitflip_fraction: f64,
    /// Submission seqs scripted to panic the worker processing them.
    pub panics: usize,
    /// Submission seqs scripted to kill the worker processing them.
    pub deaths: usize,
    /// Submission seqs scripted to stall the worker processing them.
    pub stalls: usize,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0xFA017,
            truncate_fraction: 0.05,
            bitflip_fraction: 0.05,
            panics: 2,
            deaths: 1,
            stalls: 0,
        }
    }
}

/// A deterministic fault schedule over one packet trace.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The mutated trace, same length and order as the clean input.
    pub packets: Vec<Vec<u8>>,
    /// Which packets were corrupted, and how (index into `packets`).
    pub mutations: Vec<(usize, Mutation)>,
    /// Submission seqs that should panic their worker.
    pub panic_seqs: HashSet<u64>,
    /// Submission seqs that should kill their worker.
    pub die_seqs: HashSet<u64>,
    /// Submission seqs that should stall their worker.
    pub stall_seqs: HashSet<u64>,
}

impl FaultPlan {
    /// Builds a plan over `clean`, assuming packet `i` is submitted as
    /// seq `i`. Scripted faults never target a mutated packet, so
    /// corruption handling and supervision recovery are exercised
    /// independently.
    pub fn generate(clean: &[Vec<u8>], cfg: &FaultPlanConfig) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut packets = Vec::with_capacity(clean.len());
        let mut mutations = Vec::new();
        for (i, p) in clean.iter().enumerate() {
            let mut bytes = p.clone();
            if !bytes.is_empty() && rng.gen_bool(cfg.truncate_fraction.clamp(0.0, 1.0)) {
                let kept = rng.gen_range(0..bytes.len());
                bytes.truncate(kept);
                mutations.push((i, Mutation::Truncate { kept }));
            } else if !bytes.is_empty() && rng.gen_bool(cfg.bitflip_fraction.clamp(0.0, 1.0)) {
                let byte = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8u8);
                bytes[byte] ^= 1 << bit;
                mutations.push((i, Mutation::BitFlip { byte, bit }));
            }
            packets.push(bytes);
        }

        let corrupted: HashSet<u64> = mutations.iter().map(|(i, _)| *i as u64).collect();
        let mut taken = corrupted;
        let mut draw = |rng: &mut StdRng, n: usize| -> HashSet<u64> {
            let mut out = HashSet::new();
            let space = clean.len() as u64;
            if space == 0 {
                return out;
            }
            let mut budget = n.min(clean.len());
            let mut attempts = 0;
            while budget > 0 && attempts < 10_000 {
                attempts += 1;
                let seq = rng.gen_range(0..space);
                if taken.insert(seq) {
                    out.insert(seq);
                    budget -= 1;
                }
            }
            out
        };
        let panic_seqs = draw(&mut rng, cfg.panics);
        let die_seqs = draw(&mut rng, cfg.deaths);
        let stall_seqs = draw(&mut rng, cfg.stalls);

        FaultPlan {
            packets,
            mutations,
            panic_seqs,
            die_seqs,
            stall_seqs,
        }
    }
}

/// What a scripted node-level chaos event does to its target leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEventKind {
    /// The leaf crashes abruptly (`Engine::simulate_crash`): every
    /// in-flight batch dies with it and it never comes back.
    Kill,
    /// Every worker on the leaf stalls for `ms` on its next batch — a
    /// transient wedge the epoch retry/backoff machinery must absorb.
    Stall {
        /// Stall duration, milliseconds.
        ms: u64,
    },
    /// The spine loses its link to the leaf: deliveries black-hole
    /// until the fabric's detector declares the leaf dead. From the
    /// fabric's point of view a partitioned leaf is indistinguishable
    /// from a crashed one (fail-stop model) — only the accounting
    /// path differs.
    Partition,
}

/// One scripted node-level event: at global submission seq `at_seq`,
/// do `kind` to leaf `leaf`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEvent {
    /// Global (fabric-level) submission seq that triggers the event,
    /// checked before the packet is routed.
    pub at_seq: u64,
    /// Target leaf index.
    pub leaf: usize,
    /// What happens to it.
    pub kind: NodeEventKind,
}

/// Chaos-plan knobs: how many node-level events to script over a
/// trace, across how many leaves.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed; the schedule is a pure function of it.
    pub seed: u64,
    /// Leaf count of the target fabric.
    pub leaves: usize,
    /// Leaves to kill outright (at most `leaves - 1`, so at least one
    /// survivor always remains to fail over to).
    pub kills: usize,
    /// Transient whole-leaf stalls to script.
    pub stalls: usize,
    /// Stall duration for scripted stalls, milliseconds.
    pub stall_ms: u64,
    /// Spine-to-leaf partitions to script (counted against the same
    /// `leaves - 1` survivor budget as kills).
    pub partitions: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            leaves: 2,
            kills: 1,
            stalls: 0,
            stall_ms: 50,
            partitions: 0,
        }
    }
}

/// A deterministic node-level chaos schedule for one fabric run,
/// ordered by trigger seq.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Scripted events, sorted by `at_seq` (ties broken by leaf).
    pub events: Vec<NodeEvent>,
}

impl ChaosPlan {
    /// Builds a schedule over a `trace_len`-packet run. Kill and
    /// partition targets are distinct leaves drawn without
    /// replacement, capped so at least one leaf survives; stalls may
    /// hit any leaf (including a doomed one — a stall-then-kill
    /// interleaving is exactly what the detector must not confuse).
    /// Trigger seqs land in the middle 80 % of the trace so the soak
    /// observes healthy traffic on both sides of every event.
    pub fn generate(trace_len: usize, cfg: &ChaosConfig) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let leaves = cfg.leaves.max(1);
        let mut events = Vec::new();
        if trace_len == 0 || leaves == 1 {
            return ChaosPlan { events };
        }
        let lo = (trace_len / 10) as u64;
        let hi = (trace_len - trace_len / 10).max(trace_len / 10 + 1) as u64;
        let seq = |rng: &mut StdRng| rng.gen_range(lo..hi);

        // Fatal events (kill/partition) consume the survivor budget.
        let mut doomed: HashSet<usize> = HashSet::new();
        let fatal_budget = leaves - 1;
        let draw_leaf = |rng: &mut StdRng, doomed: &mut HashSet<usize>| -> Option<usize> {
            if doomed.len() >= fatal_budget {
                return None;
            }
            for _ in 0..10_000 {
                let l = rng.gen_range(0..leaves);
                if doomed.insert(l) {
                    return Some(l);
                }
            }
            None
        };
        for _ in 0..cfg.kills {
            if let Some(leaf) = draw_leaf(&mut rng, &mut doomed) {
                events.push(NodeEvent {
                    at_seq: seq(&mut rng),
                    leaf,
                    kind: NodeEventKind::Kill,
                });
            }
        }
        for _ in 0..cfg.partitions {
            if let Some(leaf) = draw_leaf(&mut rng, &mut doomed) {
                events.push(NodeEvent {
                    at_seq: seq(&mut rng),
                    leaf,
                    kind: NodeEventKind::Partition,
                });
            }
        }
        for _ in 0..cfg.stalls {
            events.push(NodeEvent {
                at_seq: seq(&mut rng),
                leaf: rng.gen_range(0..leaves),
                kind: NodeEventKind::Stall { ms: cfg.stall_ms },
            });
        }
        events.sort_by_key(|e| (e.at_seq, e.leaf));
        ChaosPlan { events }
    }

    /// Events triggered by submitting seq `seq` (i.e. scheduled at it).
    pub fn at(&self, seq: u64) -> impl Iterator<Item = &NodeEvent> {
        self.events.iter().filter(move |e| e.at_seq == seq)
    }
}

/// A capacity bomb: a subscription set sized to blow past an admission
/// budget of `budget_entries` total table entries (each ITCH
/// subscription contributes at least one entry, so `2 * budget + 16`
/// subscriptions can never fit). Feed it to the compiler and the
/// resulting update must be rejected by admission control with zero
/// observable state change.
pub fn capacity_bomb(base: &ItchSubsConfig, budget_entries: usize, seed: u64) -> Vec<Rule> {
    let cfg = ItchSubsConfig {
        subscriptions: budget_entries * 2 + 16,
        seed,
        ..base.clone()
    };
    generate_itch_subscriptions(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 36]).collect()
    }

    #[test]
    fn plans_are_deterministic_given_a_seed() {
        let clean = trace(200);
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(&clean, &cfg);
        let b = FaultPlan::generate(&clean, &cfg);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.mutations, b.mutations);
        assert_eq!(a.panic_seqs, b.panic_seqs);
        assert_eq!(a.die_seqs, b.die_seqs);
        assert_eq!(a.stall_seqs, b.stall_seqs);
        // And a different seed genuinely changes the plan.
        let c = FaultPlan::generate(
            &clean,
            &FaultPlanConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!((&a.packets, &a.panic_seqs), (&c.packets, &c.panic_seqs));
    }

    #[test]
    fn mutations_match_the_mutated_trace() {
        let clean = trace(300);
        let plan = FaultPlan::generate(&clean, &FaultPlanConfig::default());
        assert_eq!(plan.packets.len(), clean.len());
        assert!(!plan.mutations.is_empty(), "5%+5% over 300 packets");
        let mutated: HashSet<usize> = plan.mutations.iter().map(|(i, _)| *i).collect();
        for (i, (got, want)) in plan.packets.iter().zip(&clean).enumerate() {
            if mutated.contains(&i) {
                assert_ne!(got, want, "packet {i} listed as mutated but unchanged");
            } else {
                assert_eq!(got, want, "packet {i} changed without being listed");
            }
        }
        for (i, m) in &plan.mutations {
            match m {
                Mutation::Truncate { kept } => {
                    assert_eq!(plan.packets[*i].len(), *kept);
                    assert!(*kept < clean[*i].len());
                }
                Mutation::BitFlip { byte, bit } => {
                    assert_eq!(plan.packets[*i][*byte] ^ (1 << bit), clean[*i][*byte]);
                }
            }
        }
    }

    #[test]
    fn scripted_faults_avoid_corrupted_packets_and_each_other() {
        let clean = trace(400);
        let cfg = FaultPlanConfig {
            panics: 4,
            deaths: 3,
            stalls: 2,
            ..Default::default()
        };
        let plan = FaultPlan::generate(&clean, &cfg);
        assert_eq!(plan.panic_seqs.len(), 4);
        assert_eq!(plan.die_seqs.len(), 3);
        assert_eq!(plan.stall_seqs.len(), 2);
        let corrupted: HashSet<u64> = plan.mutations.iter().map(|(i, _)| *i as u64).collect();
        let all: Vec<&HashSet<u64>> = vec![&plan.panic_seqs, &plan.die_seqs, &plan.stall_seqs];
        for (i, s) in all.iter().enumerate() {
            assert!(
                s.is_disjoint(&corrupted),
                "scripted faults hit corrupted packets"
            );
            for t in &all[i + 1..] {
                assert!(s.is_disjoint(t), "scripted fault sets overlap");
            }
        }
    }

    #[test]
    fn capacity_bomb_exceeds_its_budget() {
        let rules = capacity_bomb(&ItchSubsConfig::default(), 100, 7);
        assert!(rules.len() > 200);
    }

    #[test]
    fn chaos_plans_are_deterministic_and_leave_a_survivor() {
        let cfg = ChaosConfig {
            leaves: 4,
            kills: 2,
            partitions: 2, // budget-capped: only 3 fatal events can land
            stalls: 3,
            ..ChaosConfig::default()
        };
        let a = ChaosPlan::generate(10_000, &cfg);
        let b = ChaosPlan::generate(10_000, &cfg);
        assert_eq!(a, b);
        assert_ne!(
            a,
            ChaosPlan::generate(10_000, &ChaosConfig { seed: 1, ..cfg })
        );

        let fatal: Vec<usize> = a
            .events
            .iter()
            .filter(|e| !matches!(e.kind, NodeEventKind::Stall { .. }))
            .map(|e| e.leaf)
            .collect();
        assert!(fatal.len() <= 3, "survivor budget violated");
        let distinct: HashSet<usize> = fatal.iter().copied().collect();
        assert_eq!(distinct.len(), fatal.len(), "one leaf doomed twice");
        assert!(distinct.len() < 4, "no survivor left");
        for e in &a.events {
            assert!(e.leaf < 4);
            assert!(
                (1_000..9_000).contains(&e.at_seq),
                "event outside mid-trace"
            );
        }
        // Sorted by trigger seq, and `at` finds exactly the scheduled.
        assert!(a.events.windows(2).all(|w| w[0].at_seq <= w[1].at_seq));
        let first = &a.events[0];
        assert!(a.at(first.at_seq).any(|e| e == first));
        assert_eq!(a.at(0).count(), 0);
    }

    #[test]
    fn degenerate_chaos_inputs_produce_empty_plans() {
        assert!(ChaosPlan::generate(0, &ChaosConfig::default())
            .events
            .is_empty());
        let one_leaf = ChaosConfig {
            leaves: 1,
            kills: 3,
            ..ChaosConfig::default()
        };
        assert!(ChaosPlan::generate(1_000, &one_leaf).events.is_empty());
    }
}
