//! Seed-range plumbing for the soak suites. The chaos and
//! fault-injection soaks run a fixed seed list in PR CI; the nightly
//! workflow widens coverage by exporting `CAMUS_SOAK_SEEDS`, which
//! this helper parses:
//!
//! * `CAMUS_SOAK_SEEDS=100..140` — half-open range,
//! * `CAMUS_SOAK_SEEDS=7,19,0xFA11` — comma list (hex with `0x`),
//! * unset or unparsable — the suite's built-in defaults.

/// The seeds a soak should run: the parsed `CAMUS_SOAK_SEEDS`
/// environment variable, or `defaults` when it is unset or invalid
/// (an invalid value also prints a warning — a nightly run silently
/// soaking the wrong seeds would be worse than failing loudly).
pub fn soak_seeds(defaults: &[u64]) -> Vec<u64> {
    match std::env::var("CAMUS_SOAK_SEEDS") {
        Ok(raw) => match parse_seeds(&raw) {
            Some(seeds) if !seeds.is_empty() => seeds,
            _ => {
                eprintln!("CAMUS_SOAK_SEEDS={raw:?} is not a range or seed list; using defaults");
                defaults.to_vec()
            }
        },
        Err(_) => defaults.to_vec(),
    }
}

fn parse_one(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn parse_seeds(raw: &str) -> Option<Vec<u64>> {
    if let Some((lo, hi)) = raw.split_once("..") {
        let (lo, hi) = (parse_one(lo)?, parse_one(hi)?);
        if hi <= lo || hi - lo > 10_000 {
            return None;
        }
        return Some((lo..hi).collect());
    }
    raw.split(',').map(parse_one).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_lists_and_hex() {
        assert_eq!(parse_seeds("100..104"), Some(vec![100, 101, 102, 103]));
        assert_eq!(parse_seeds("7,19"), Some(vec![7, 19]));
        assert_eq!(parse_seeds("0xFA11"), Some(vec![0xFA11]));
        assert_eq!(parse_seeds("4..4"), None);
        assert_eq!(parse_seeds("10..2"), None);
        assert_eq!(parse_seeds("abc"), None);
        assert_eq!(parse_seeds("0..1000000"), None, "runaway range refused");
    }
}
