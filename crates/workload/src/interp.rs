//! Naive AST interpreter for stateless subscription rules.
//!
//! This is the differential-testing *oracle*: it evaluates each rule's
//! condition directly on a decoded event, with none of the BDD
//! machinery the compiler uses. The Siena differential tests and the
//! churn (live-update) differential tests both check the compiled
//! pipeline against this interpreter, so it lives here where every
//! test crate can share one copy.
//!
//! Scope: stateless rules only (field-vs-constant atoms combined with
//! and/or/not). State references panic — the oracle for stateful
//! programs is the sequential executor, not this interpreter.

use camus_lang::ast::{Action, Atom, Cond, Operand, Rule, Value};
use camus_lang::spec::Spec;

/// Evaluates a rule condition on a decoded event. `fields` maps a
/// field name to its value; `bits` to its width (needed to encode
/// symbol literals for comparison).
pub fn eval_cond(cond: &Cond, fields: &dyn Fn(&str) -> u64, bits: &dyn Fn(&str) -> u32) -> bool {
    match cond {
        Cond::And(a, b) => eval_cond(a, fields, bits) && eval_cond(b, fields, bits),
        Cond::Or(a, b) => eval_cond(a, fields, bits) || eval_cond(b, fields, bits),
        Cond::Not(a) => !eval_cond(a, fields, bits),
        Cond::Atom(Atom { operand, op, value }) => {
            let name = match operand {
                Operand::Field(fr) => fr.field.as_str(),
                other => panic!("interpreter handles stateless rules only: {other:?}"),
            };
            let lhs = fields(name);
            let rhs = match value {
                Value::Int(n) => *n,
                Value::Symbol(_) => value.as_u64(bits(name)),
            };
            op.eval(lhs, rhs)
        }
        Cond::True => true,
    }
}

/// The union of forward ports of every rule whose condition matches,
/// sorted and deduplicated — the ground-truth forwarding decision for
/// a stateless rule set.
pub fn naive_ports(
    rules: &[Rule],
    fields: &dyn Fn(&str) -> u64,
    bits: &dyn Fn(&str) -> u32,
) -> Vec<u16> {
    let mut out = Vec::new();
    for r in rules {
        if eval_cond(&r.condition, fields, bits) {
            for a in &r.actions {
                if let Action::Fwd(ports) = a {
                    out.extend_from_slice(ports);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// [`naive_ports`] over a raw event: decodes each field by walking the
/// spec's first header type (fields concatenated in declaration order
/// — the `Raw` encapsulation the generators emit).
pub fn naive_ports_for_event(spec: &Spec, rules: &[Rule], event: &[u8]) -> Vec<u16> {
    let ht = &spec.header_types[0];
    let field_at = |name: &str| -> u64 {
        let f = ht.field(name).expect("field exists in spec");
        camus_pipeline::bits::extract_bits(event, u64::from(f.bit_offset), f.bits)
            .expect("event covers the header")
    };
    let bits_of = |name: &str| ht.field(name).expect("field exists in spec").bits;
    naive_ports(rules, &field_at, &bits_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::ast::{FieldRef, RelOp};

    fn rule(field: &str, op: RelOp, v: u64, port: u16) -> Rule {
        Rule::new(
            Cond::Atom(Atom {
                operand: Operand::Field(FieldRef::short(field)),
                op,
                value: Value::Int(v),
            }),
            vec![Action::Fwd(vec![port])],
        )
    }

    #[test]
    fn union_of_matching_rules_sorted_deduped() {
        let rules = vec![
            rule("a", RelOp::Gt, 10, 7),
            rule("a", RelOp::Lt, 100, 3),
            rule("b", RelOp::Eq, 5, 7), // duplicate port
            rule("b", RelOp::Eq, 6, 9), // non-matching
        ];
        let fields = |n: &str| match n {
            "a" => 50u64,
            "b" => 5,
            _ => unreachable!(),
        };
        let bits = |_: &str| 32u32;
        assert_eq!(naive_ports(&rules, &fields, &bits), vec![3, 7]);
    }

    #[test]
    fn boolean_connectives() {
        let c = Cond::Atom(Atom {
            operand: Operand::Field(FieldRef::short("a")),
            op: RelOp::Gt,
            value: Value::Int(1),
        })
        .and(Cond::Not(Box::new(Cond::Atom(Atom {
            operand: Operand::Field(FieldRef::short("b")),
            op: RelOp::Eq,
            value: Value::Int(0),
        }))));
        let bits = |_: &str| 32u32;
        assert!(eval_cond(&c, &|n| if n == "a" { 2 } else { 1 }, &bits));
        assert!(!eval_cond(&c, &|_| 0, &bits));
    }

    #[test]
    fn decodes_raw_events_by_spec_layout() {
        let spec = camus_lang::parse_spec(
            "header_type t { fields { a: 32; b: 32; } }\nheader t ev;\n@query_field(ev.a)\n@query_field(ev.b)\n",
        )
        .unwrap();
        let rules = vec![rule("b", RelOp::Eq, 9, 4)];
        let mut ev = Vec::new();
        ev.extend_from_slice(&1u32.to_be_bytes());
        ev.extend_from_slice(&9u32.to_be_bytes());
        assert_eq!(naive_ports_for_event(&spec, &rules, &ev), vec![4]);
        ev[7] = 8;
        assert!(naive_ports_for_event(&spec, &rules, &ev).is_empty());
    }
}
