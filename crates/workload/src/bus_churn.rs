//! Concurrent-client churn driver for the `camusd` control bus: the
//! realistic front end for update-plane benchmarks and soaks. N client
//! threads each own a disjoint slice of a subscription pool and hammer
//! the daemon with interleaved `Subscribe`/`Unsubscribe` RPCs,
//! recording per-RPC round-trip latency and every ack's generation.
//!
//! The sub/unsub pattern is self-cancelling: each client subscribes
//! rule *i*, and on the next op unsubscribes it again, so a completed
//! run leaves the daemon's rule set exactly where it started — which
//! is what lets a bench iterate the driver on one long-lived daemon.

use std::time::Instant;

use camus_bus::{BusAddr, BusClient, BusReply, BusRequest, WireError};
use camus_lang::ast::Rule;

/// One churn run's shape.
#[derive(Debug, Clone)]
pub struct BusChurnConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Mutation RPCs per client (subscribe/unsubscribe alternating;
    /// even counts leave the rule set unchanged).
    pub ops_per_client: usize,
}

impl Default for BusChurnConfig {
    fn default() -> Self {
        BusChurnConfig {
            clients: 4,
            ops_per_client: 16,
        }
    }
}

/// One client's view of a completed run.
#[derive(Debug, Clone, Default)]
pub struct BusChurnClientReport {
    /// `(generation, coalesced_with)` for every ack, in issue order.
    pub acks: Vec<(u64, u32)>,
    /// Typed rejections received (kind, message).
    pub rejections: Vec<(camus_bus::RejectKind, String)>,
    /// Per-RPC round-trip nanoseconds, in issue order.
    pub latencies_ns: Vec<u64>,
}

/// The merged run report.
#[derive(Debug, Clone, Default)]
pub struct BusChurnReport {
    /// Per-client reports, index = client id.
    pub clients: Vec<BusChurnClientReport>,
    /// Total mutation RPCs issued.
    pub ops: u64,
    /// Total acks (accepted mutations).
    pub accepted: u64,
    /// Total typed rejections.
    pub rejected: u64,
    /// All round-trip latencies, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Highest generation seen in any ack.
    pub max_generation: u64,
}

impl BusChurnReport {
    /// The p-th percentile round-trip latency (0.0..=1.0), ns.
    pub fn latency_ns(&self, p: f64) -> u64 {
        percentile(&self.latencies_ns, p)
    }
}

/// The p-th percentile of an ascending-sorted sample, by rank.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs `cfg.clients` threads of alternating subscribe/unsubscribe
/// churn against the daemon at `addr`. `pool` is split into disjoint
/// per-client slices (clients never contend on a rule, so every
/// rejection is a daemon bug, not an artifact of the driver); it must
/// hold at least `clients` rules. Returns the merged report; transport
/// errors on any client fail the whole run.
pub fn run_bus_churn(
    addr: &BusAddr,
    pool: &[Rule],
    cfg: &BusChurnConfig,
) -> Result<BusChurnReport, WireError> {
    let clients = cfg.clients.max(1);
    let slice_len = pool.len() / clients;
    if slice_len == 0 {
        return Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("pool of {} rules cannot feed {clients} clients", pool.len()),
        )));
    }

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let rules: Vec<String> = pool[c * slice_len..(c + 1) * slice_len]
                .iter()
                .map(|r| r.to_string())
                .collect();
            let ops = cfg.ops_per_client;
            std::thread::spawn(move || run_client(&addr, &rules, ops))
        })
        .collect();

    let mut report = BusChurnReport::default();
    for handle in handles {
        let client = match handle.join() {
            Ok(r) => r?,
            Err(_) => {
                return Err(WireError::Io(std::io::Error::other(
                    "churn client thread panicked",
                )))
            }
        };
        report.ops += (client.acks.len() + client.rejections.len()) as u64;
        report.accepted += client.acks.len() as u64;
        report.rejected += client.rejections.len() as u64;
        report.latencies_ns.extend_from_slice(&client.latencies_ns);
        for &(generation, _) in &client.acks {
            report.max_generation = report.max_generation.max(generation);
        }
        report.clients.push(client);
    }
    report.latencies_ns.sort_unstable();
    Ok(report)
}

/// One client: op `i` subscribes rule `i/2`, op `i+1` unsubscribes it.
/// An odd `ops` count leaves one extra rule installed — callers who
/// need an unchanged final set should use even counts.
fn run_client(
    addr: &BusAddr,
    rules: &[String],
    ops: usize,
) -> Result<BusChurnClientReport, WireError> {
    let mut client = BusClient::connect(addr)?;
    let mut report = BusChurnClientReport::default();
    for op in 0..ops {
        let rule = rules[(op / 2) % rules.len()].clone();
        let req = if op % 2 == 0 {
            BusRequest::Subscribe { rules: vec![rule] }
        } else {
            BusRequest::Unsubscribe { rules: vec![rule] }
        };
        let start = Instant::now();
        let reply = client.request(&req)?;
        report.latencies_ns.push(start.elapsed().as_nanos() as u64);
        match reply {
            BusReply::Ack {
                generation,
                coalesced_with,
            } => report.acks.push((generation, coalesced_with)),
            BusReply::Rejected { kind, message } => report.rejections.push((kind, message)),
            other => {
                return Err(WireError::Io(std::io::Error::other(format!(
                    "unexpected churn reply: {other:?}"
                ))))
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.5), 51);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
