//! Rule-churn plans: timed add/remove sequences over generated rule
//! sets.
//!
//! §3.2 splits the compiler so "new subscriptions can be installed
//! without recompiling the static program". The churn generator
//! produces the workload for exercising that path end to end: a pool
//! of subscriptions, an initial active set, and a deterministic
//! schedule of timed update steps (each adding and removing a few
//! rules) to feed through [`IncrementalCompiler::update`] and the
//! engine's update plane. Plans over both the Siena universe
//! ([`siena_churn`]) and the ITCH subscription workload
//! ([`itch_churn`]) are provided.
//!
//! [`IncrementalCompiler::update`]: https://docs.rs/camus-core
//!
//! Everything is deterministic given the seeds, so differential tests
//! can replay a plan against a fresh full compile at every step.

use camus_lang::ast::Rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::itch_subs::{generate_itch_subscriptions, ItchSubsConfig};
use crate::siena::{SienaConfig, SienaWorkload};

/// Shape of a churn schedule.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Rules active before the first update step.
    pub initial_rules: usize,
    /// Number of update steps.
    pub steps: usize,
    /// Rules added per step (drawn from the pool, never reused).
    pub adds_per_step: usize,
    /// Rules removed per step (drawn from the then-active set; capped
    /// at the active count so the set never underflows).
    pub removes_per_step: usize,
    /// Microseconds between steps; step `i` fires at `(i+1) * gap`.
    pub step_gap_us: u64,
    /// Seed for removal choices and out-of-alphabet placement.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            initial_rules: 16,
            steps: 8,
            adds_per_step: 4,
            removes_per_step: 2,
            step_gap_us: 100_000,
            seed: 0xC412,
        }
    }
}

impl ChurnConfig {
    /// Pool size a schedule of this shape consumes.
    pub fn pool_size(&self) -> usize {
        self.initial_rules + self.steps * self.adds_per_step
    }
}

/// One timed update step.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnStep {
    /// When the step fires, relative to trace start.
    pub at_us: u64,
    /// Rules to install.
    pub add: Vec<Rule>,
    /// Rules to retire (always a subset of the set active before the
    /// step).
    pub remove: Vec<Rule>,
}

/// An initial rule set plus a timed sequence of updates.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    /// Rules active at time zero.
    pub initial: Vec<Rule>,
    /// The update steps, in firing order.
    pub steps: Vec<ChurnStep>,
}

impl ChurnSchedule {
    /// Builds a schedule from a rule pool. The first
    /// `cfg.initial_rules` pool entries form the initial set; each
    /// step adds the next `adds_per_step` pool entries and removes
    /// `removes_per_step` random members of the then-active set.
    ///
    /// Panics if the pool is smaller than [`ChurnConfig::pool_size`].
    pub fn from_pool(pool: &[Rule], cfg: &ChurnConfig) -> ChurnSchedule {
        assert!(
            pool.len() >= cfg.pool_size(),
            "churn pool has {} rules but the schedule consumes {}",
            pool.len(),
            cfg.pool_size()
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let initial: Vec<Rule> = pool[..cfg.initial_rules].to_vec();
        let mut active = initial.clone();
        let mut next = cfg.initial_rules;
        let mut steps = Vec::with_capacity(cfg.steps);
        for i in 0..cfg.steps {
            let mut remove = Vec::new();
            for _ in 0..cfg.removes_per_step.min(active.len()) {
                let j = rng.gen_range(0..active.len());
                remove.push(active.swap_remove(j));
            }
            let add: Vec<Rule> = pool[next..next + cfg.adds_per_step].to_vec();
            next += cfg.adds_per_step;
            active.extend(add.iter().cloned());
            steps.push(ChurnStep {
                at_us: (i as u64 + 1) * cfg.step_gap_us,
                add,
                remove,
            });
        }
        ChurnSchedule { initial, steps }
    }

    /// The active rule set after the first `steps_applied` steps,
    /// replayed with the same first-match removal semantics the
    /// incremental compiler uses.
    pub fn rules_after(&self, steps_applied: usize) -> Vec<Rule> {
        let mut active = self.initial.clone();
        for step in &self.steps[..steps_applied] {
            for r in &step.remove {
                if let Some(i) = active.iter().position(|a| a == r) {
                    active.remove(i);
                }
            }
            active.extend(step.add.iter().cloned());
        }
        active
    }

    /// The active rule set once every step has fired.
    pub fn final_rules(&self) -> Vec<Rule> {
        self.rules_after(self.steps.len())
    }
}

/// A churn plan over the Siena universe: the pool workload (spec,
/// events, and the in-alphabet rule pool) plus the schedule.
#[derive(Debug, Clone)]
pub struct SienaChurn {
    /// The pool workload. `base.rules` is the in-alphabet pool — seed
    /// an [`IncrementalCompiler`] session with it and every scheduled
    /// add except the out-of-alphabet extras takes the delta path.
    ///
    /// [`IncrementalCompiler`]: https://docs.rs/camus-core
    pub base: SienaWorkload,
    /// Extra rules generated outside the pool (different seed, same
    /// universe) and spliced into random steps' adds: with high
    /// probability their constants are not in the alphabet, forcing
    /// the `NeedsFullRecompile` fallback.
    pub out_of_alphabet: Vec<Rule>,
    /// The timed schedule (out-of-alphabet extras already spliced in).
    pub schedule: ChurnSchedule,
}

/// Generates a Siena churn plan. `out_of_alphabet_adds` extra rules
/// are drawn from an independent generator pass and appended to random
/// steps, so a plan with `out_of_alphabet_adds > 0` exercises the
/// full-recompile fallback alongside the delta path.
pub fn siena_churn(
    siena: &SienaConfig,
    cfg: &ChurnConfig,
    out_of_alphabet_adds: usize,
) -> SienaChurn {
    let pool_cfg = SienaConfig {
        subscriptions: cfg.pool_size(),
        ..siena.clone()
    };
    let base = pool_cfg.generate();
    let mut schedule = ChurnSchedule::from_pool(&base.rules, cfg);
    let oob_cfg = SienaConfig {
        subscriptions: out_of_alphabet_adds,
        seed: siena.seed ^ 0x00B,
        ..siena.clone()
    };
    let out_of_alphabet = oob_cfg.generate().rules;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x00B);
    for r in &out_of_alphabet {
        let i = rng.gen_range(0..schedule.steps.len().max(1));
        schedule.steps[i].add.push(r.clone());
    }
    SienaChurn {
        base,
        out_of_alphabet,
        schedule,
    }
}

/// Generates a churn schedule over ITCH subscriptions
/// (`stock == S ∧ price > P : fwd(H)`). The pool doubles as the
/// session alphabet.
pub fn itch_churn(itch: &ItchSubsConfig, cfg: &ChurnConfig) -> (Vec<Rule>, ChurnSchedule) {
    let pool_cfg = ItchSubsConfig {
        subscriptions: cfg.pool_size(),
        ..itch.clone()
    };
    let pool = generate_itch_subscriptions(&pool_cfg);
    let schedule = ChurnSchedule::from_pool(&pool, cfg);
    (pool, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_consumes_the_pool_in_order() {
        let cfg = ChurnConfig {
            initial_rules: 4,
            steps: 3,
            adds_per_step: 2,
            removes_per_step: 1,
            ..Default::default()
        };
        let (pool, s) = itch_churn(&ItchSubsConfig::default(), &cfg);
        assert_eq!(pool.len(), cfg.pool_size());
        assert_eq!(s.initial, pool[..4]);
        assert_eq!(s.steps.len(), 3);
        for (i, step) in s.steps.iter().enumerate() {
            assert_eq!(step.add, pool[4 + 2 * i..4 + 2 * (i + 1)]);
            assert_eq!(step.remove.len(), 1);
            assert_eq!(step.at_us, (i as u64 + 1) * cfg.step_gap_us);
        }
    }

    #[test]
    fn removes_always_target_active_rules() {
        let cfg = ChurnConfig {
            initial_rules: 3,
            steps: 10,
            adds_per_step: 1,
            removes_per_step: 2,
            ..Default::default()
        };
        let (_, s) = itch_churn(&ItchSubsConfig::default(), &cfg);
        for k in 0..=s.steps.len() {
            let active = s.rules_after(k);
            if k < s.steps.len() {
                for r in &s.steps[k].remove {
                    assert!(active.contains(r), "step {k} removes an inactive rule");
                }
            }
        }
        // Net drift: +1 −2 per step, but never below zero.
        assert_eq!(
            s.final_rules().len(),
            3 + 10 - s.steps.iter().map(|s| s.remove.len()).sum::<usize>()
        );
    }

    #[test]
    fn rules_after_replays_cumulatively() {
        let cfg = ChurnConfig {
            initial_rules: 5,
            steps: 4,
            adds_per_step: 3,
            removes_per_step: 1,
            ..Default::default()
        };
        let (_, s) = itch_churn(&ItchSubsConfig::default(), &cfg);
        let mut active = s.initial.clone();
        for (k, step) in s.steps.iter().enumerate() {
            for r in &step.remove {
                let i = active.iter().position(|a| a == r).unwrap();
                active.remove(i);
            }
            active.extend(step.add.iter().cloned());
            assert_eq!(s.rules_after(k + 1), active);
        }
    }

    #[test]
    fn siena_churn_splices_out_of_alphabet_rules() {
        let cfg = ChurnConfig::default();
        let plan = siena_churn(&SienaConfig::default(), &cfg, 3);
        assert_eq!(plan.out_of_alphabet.len(), 3);
        let scheduled: usize = plan.schedule.steps.iter().map(|s| s.add.len()).sum();
        assert_eq!(scheduled, cfg.steps * cfg.adds_per_step + 3);
        // The extras are scheduled, not silently dropped.
        for r in &plan.out_of_alphabet {
            assert!(plan.schedule.steps.iter().any(|s| s.add.contains(r)));
            assert!(!plan.base.rules.contains(r));
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = ChurnConfig::default();
        let a = siena_churn(&SienaConfig::default(), &cfg, 2);
        let b = siena_churn(&SienaConfig::default(), &cfg, 2);
        assert_eq!(a.schedule.initial, b.schedule.initial);
        assert_eq!(a.schedule.steps, b.schedule.steps);
    }
}
