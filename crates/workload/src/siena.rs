//! Siena-style synthetic subscription workloads (Figures 5a and 5b).
//!
//! Modeled on the *Siena Synthetic Benchmark Generator* (Carzaniga &
//! Wolf), "which has been used to evaluate prior work in pub/sub
//! systems" (§4): an attribute universe of typed attributes; each
//! subscription is a conjunction of `k` predicates over randomly chosen
//! attributes, with operators drawn from a weighted mix and values from
//! per-attribute distributions. Events (messages) assign a value to
//! every attribute.

use camus_lang::ast::{Action, Atom, Cond, FieldRef, Operand, RelOp, Rule, Value};
use camus_lang::spec::Spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute type in the universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// 32-bit integer attribute, range-matchable.
    Int,
    /// Symbol attribute over a small alphabet, exact-match.
    Symbol,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SienaConfig {
    /// Number of subscriptions to generate.
    pub subscriptions: usize,
    /// Predicates per subscription (the Fig. 5b sweep variable).
    pub predicates_per_subscription: usize,
    /// Number of integer attributes.
    pub int_attributes: usize,
    /// Number of symbol attributes.
    pub symbol_attributes: usize,
    /// Distinct values per symbol attribute.
    pub symbol_alphabet: usize,
    /// Integer value range (exclusive upper bound).
    pub int_range: u64,
    /// Weights for (==, <, >) on integer attributes.
    pub operator_weights: (u32, u32, u32),
    /// Number of end-host ports subscriptions forward to.
    pub hosts: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SienaConfig {
    fn default() -> Self {
        SienaConfig {
            subscriptions: 25,
            predicates_per_subscription: 3,
            int_attributes: 3,
            symbol_attributes: 2,
            symbol_alphabet: 30,
            int_range: 1000,
            operator_weights: (2, 1, 1),
            hosts: 16,
            seed: 0xCA0005,
        }
    }
}

/// A generated workload: the message-format spec, the subscriptions,
/// and a stream of events for match testing.
#[derive(Debug, Clone)]
pub struct SienaWorkload {
    /// The synthetic message format (one header, one field per
    /// attribute).
    pub spec: Spec,
    /// The spec source text the spec was parsed from.
    pub spec_source: String,
    /// Generated subscription rules.
    pub rules: Vec<Rule>,
    /// Attribute names in field order (ints then symbols).
    pub attributes: Vec<(String, AttrType)>,
}

impl SienaConfig {
    /// Generates the workload.
    pub fn generate(&self) -> SienaWorkload {
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Attribute universe and spec text.
        let mut attributes: Vec<(String, AttrType)> = Vec::new();
        for i in 0..self.int_attributes {
            attributes.push((format!("ival{i}"), AttrType::Int));
        }
        for i in 0..self.symbol_attributes {
            attributes.push((format!("sym{i}"), AttrType::Symbol));
        }
        let mut src = String::from("header_type siena_event_t {\n    fields {\n");
        for (name, ty) in &attributes {
            let bits = match ty {
                AttrType::Int => 32,
                AttrType::Symbol => 64,
            };
            src.push_str(&format!("        {name}: {bits};\n"));
        }
        src.push_str("    }\n}\nheader siena_event_t ev;\n");
        for (name, ty) in &attributes {
            match ty {
                AttrType::Int => src.push_str(&format!("@query_field(ev.{name})\n")),
                AttrType::Symbol => src.push_str(&format!("@query_field_exact(ev.{name})\n")),
            }
        }
        let spec = camus_lang::parse_spec(&src).expect("generated spec is well-formed");

        // Subscriptions.
        let (weq, wlt, wgt) = self.operator_weights;
        let wtotal = weq + wlt + wgt;
        let mut rules = Vec::with_capacity(self.subscriptions);
        for _ in 0..self.subscriptions {
            let k = self
                .predicates_per_subscription
                .max(1)
                .min(attributes.len());
            // Choose k distinct attributes.
            let mut chosen: Vec<usize> = (0..attributes.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..chosen.len());
                chosen.swap(i, j);
            }
            chosen.truncate(k);
            let mut cond: Option<Cond> = None;
            for &ai in &chosen {
                let (name, ty) = &attributes[ai];
                let atom = match ty {
                    AttrType::Int => {
                        let w = rng.gen_range(0..wtotal);
                        let op = if w < weq {
                            RelOp::Eq
                        } else if w < weq + wlt {
                            RelOp::Lt
                        } else {
                            RelOp::Gt
                        };
                        // Keep < and > constants interior so predicates
                        // are never trivially constant.
                        let v = match op {
                            RelOp::Lt => rng.gen_range(1..self.int_range),
                            _ => rng.gen_range(0..self.int_range),
                        };
                        Atom {
                            operand: Operand::Field(FieldRef::short(name.clone())),
                            op,
                            value: Value::Int(v),
                        }
                    }
                    AttrType::Symbol => Atom {
                        operand: Operand::Field(FieldRef::short(name.clone())),
                        op: RelOp::Eq,
                        value: Value::Symbol(symbol_name(rng.gen_range(0..self.symbol_alphabet))),
                    },
                };
                let c = Cond::Atom(atom);
                cond = Some(match cond {
                    Some(prev) => prev.and(c),
                    None => c,
                });
            }
            let port = rng.gen_range(1..=self.hosts);
            rules.push(Rule::new(
                cond.unwrap_or(Cond::True),
                vec![Action::Fwd(vec![port])],
            ));
        }
        SienaWorkload {
            spec,
            spec_source: src,
            rules,
            attributes,
        }
    }

    /// Generates `n` events as raw packets for the workload's spec
    /// (fields concatenated in declaration order — the `Raw`
    /// encapsulation).
    pub fn generate_events(&self, workload: &SienaWorkload, n: usize) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed);
        (0..n)
            .map(|_| {
                let mut pkt = Vec::new();
                for (_, ty) in &workload.attributes {
                    match ty {
                        AttrType::Int => {
                            let v = rng.gen_range(0..self.int_range) as u32;
                            pkt.extend_from_slice(&v.to_be_bytes());
                        }
                        AttrType::Symbol => {
                            let s = symbol_name(rng.gen_range(0..self.symbol_alphabet));
                            let v = camus_lang::symbol::encode_symbol(&s, 64);
                            pkt.extend_from_slice(&v.to_be_bytes());
                        }
                    }
                }
                pkt
            })
            .collect()
    }
}

/// Deterministic symbol alphabet: SYM000, SYM001, ...
pub fn symbol_name(i: usize) -> String {
    format!("SYM{i:03}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let cfg = SienaConfig {
            subscriptions: 40,
            ..Default::default()
        };
        let w = cfg.generate();
        assert_eq!(w.rules.len(), 40);
        assert_eq!(w.attributes.len(), 5);
        assert_eq!(w.spec.query_fields.len(), 5);
    }

    #[test]
    fn predicate_count_is_respected() {
        for k in 1..=5 {
            let cfg = SienaConfig {
                predicates_per_subscription: k,
                ..Default::default()
            };
            let w = cfg.generate();
            for r in &w.rules {
                assert_eq!(r.condition.atom_count(), k, "k={k}");
            }
        }
    }

    #[test]
    fn predicates_cap_at_attribute_count() {
        let cfg = SienaConfig {
            predicates_per_subscription: 99,
            int_attributes: 2,
            symbol_attributes: 1,
            ..Default::default()
        };
        let w = cfg.generate();
        for r in &w.rules {
            assert_eq!(r.condition.atom_count(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SienaConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.spec_source, b.spec_source);
        assert_eq!(cfg.generate_events(&a, 10), cfg.generate_events(&b, 10));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SienaConfig::default().generate();
        let b = SienaConfig {
            seed: 99,
            ..Default::default()
        }
        .generate();
        assert_ne!(a.rules, b.rules);
    }

    #[test]
    fn events_match_spec_width() {
        let cfg = SienaConfig::default();
        let w = cfg.generate();
        let total_bits: u32 = w.spec.header_types[0].total_bits();
        for ev in cfg.generate_events(&w, 5) {
            assert_eq!(ev.len() * 8, total_bits as usize);
        }
    }

    #[test]
    fn symbol_predicates_only_use_eq() {
        let cfg = SienaConfig {
            int_attributes: 0,
            symbol_attributes: 3,
            predicates_per_subscription: 2,
            ..Default::default()
        };
        let w = cfg.generate();
        fn check(c: &Cond) {
            match c {
                Cond::And(a, b) => {
                    check(a);
                    check(b);
                }
                Cond::Atom(a) => assert_eq!(a.op, RelOp::Eq),
                Cond::True => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        for r in &w.rules {
            check(&r.condition);
        }
    }
}
