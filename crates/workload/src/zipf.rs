//! Zipf-distributed sampling over a finite universe.
//!
//! Real market feeds are heavily skewed: a few tickers account for most
//! of the traffic. The trace synthesizer draws symbols from a Zipf
//! distribution; this is a simple CDF-table sampler (the universe is
//! small, so O(log n) binary search per draw is plenty).

use rand::Rng;

/// A Zipf sampler over `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be at least 1; `s = 0` degenerates
    /// to the uniform distribution.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws an index in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of index `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.2);
        for i in 1..50 {
            assert!(z.pmf(0) >= z.pmf(i));
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_follow_the_distribution() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let expected = z.pmf(i) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "i={i} got={got} expected={expected}"
            );
        }
    }

    #[test]
    fn single_element_universe() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
