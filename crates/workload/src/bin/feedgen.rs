//! `feedgen` — synthesize a market-data feed and write it as a pcap.
//!
//! ```text
//! feedgen [--kind nasdaq|synthetic] [--messages N] [--per-packet K]
//!         [--seed S] [--out feed.pcap]
//! ```
//!
//! The output is a standard libpcap capture (Ethernet/IPv4/UDP/
//! MoldUDP64/ITCH) that tcpdump and Wireshark open directly, and that
//! the netsim experiments can replay.

use std::fs::File;
use std::io::BufWriter;
use std::process::exit;

use camus_itch::pcap;
use camus_workload::{synthesize_feed, TraceConfig};

fn usage(msg: &str) -> ! {
    eprintln!("feedgen: {msg}");
    eprintln!(
        "usage: feedgen [--kind nasdaq|synthetic] [--messages N] [--per-packet K] [--seed S] [--out FILE]"
    );
    exit(2);
}

fn main() {
    let mut kind = "nasdaq".to_string();
    let mut messages = 100_000usize;
    let mut per_packet = 1usize;
    let mut seed: Option<u64> = None;
    let mut out = "feed.pcap".to_string();

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--kind" => kind = val("--kind"),
            "--messages" => {
                messages = val("--messages")
                    .parse()
                    .unwrap_or_else(|_| usage("--messages N"))
            }
            "--per-packet" => {
                per_packet = val("--per-packet")
                    .parse()
                    .unwrap_or_else(|_| usage("--per-packet K"))
            }
            "--seed" => seed = Some(val("--seed").parse().unwrap_or_else(|_| usage("--seed S"))),
            "--out" => out = val("--out"),
            "-h" | "--help" => usage("help"),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut cfg = match kind.as_str() {
        "nasdaq" => TraceConfig::nasdaq_like(messages),
        "synthetic" => TraceConfig::synthetic(messages),
        other => usage(&format!("unknown kind `{other}`")),
    };
    cfg.messages_per_packet = per_packet.max(1);
    if let Some(s) = seed {
        cfg.seed = s;
    }

    let trace = synthesize_feed(&cfg);
    let targets: usize = trace.iter().map(|p| p.target_messages).sum();

    let file = File::create(&out).unwrap_or_else(|e| {
        eprintln!("feedgen: cannot create {out}: {e}");
        exit(1);
    });
    let mut w = BufWriter::new(file);
    pcap::write_header(&mut w).expect("write header");
    for p in &trace {
        pcap::write_packet(&mut w, p.time_ns, &p.bytes).expect("write packet");
    }
    let span_ms = trace.last().map(|p| p.time_ns as f64 / 1e6).unwrap_or(0.0);
    println!(
        "wrote {}: {} packets, {} messages ({} {} / {:.2}% target), {:.1} ms of feed",
        out,
        trace.len(),
        messages,
        targets,
        cfg.target_symbol,
        targets as f64 * 100.0 / messages.max(1) as f64,
        span_ms
    );
}
