//! Market-data feed synthesis for the Figure 7 latency experiments.
//!
//! The paper uses "a Nasdaq trace from August 30th 2017 and a synthetic
//! feed. The number of messages of interest (i.e. for GOOGL) is 0.5% of
//! the Nasdaq trace, and 5% of the synthetic feed" (§4). The real trace
//! is proprietary; this synthesizer reproduces the properties Figure 7
//! depends on (DESIGN.md §2): the fraction of interesting traffic, Zipf
//! symbol popularity, realistic message-type mix, and bursty arrivals
//! (market-data traffic clusters around opens/closes and news).

use camus_itch::itch::{AddOrder, ItchMessage, Side};
use camus_itch::{build_feed_packet, FeedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::itch_subs::stock_symbol;
use crate::zipf::Zipf;

/// Which of the paper's two workloads to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Nasdaq-like: bursty arrivals, 0.5 % GOOGL.
    NasdaqLike,
    /// Synthetic: smooth arrivals, 5 % GOOGL.
    SyntheticUniform,
}

/// Feed synthesizer configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Workload flavour.
    pub kind: TraceKind,
    /// Total ITCH messages to generate.
    pub messages: usize,
    /// Messages packed into each MoldUDP packet.
    pub messages_per_packet: usize,
    /// Mean offered load in messages/second.
    pub rate_msgs_per_sec: f64,
    /// The subscribed symbol (the paper filters for GOOGL).
    pub target_symbol: String,
    /// Fraction of messages that are add-orders for the target symbol
    /// (0.005 for `NasdaqLike`, 0.05 for `SyntheticUniform`).
    pub target_fraction: f64,
    /// Non-target symbol universe size.
    pub symbols: usize,
    /// Zipf exponent of symbol popularity (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of non-target messages that are add-orders (the rest
    /// are executes/cancels/deletes/trades — realistic noise).
    pub add_order_fraction: f64,
    /// Burst period (µs); every period, arrivals accelerate.
    pub burst_period_us: u64,
    /// Burst duration within each period (µs).
    pub burst_len_us: u64,
    /// Rate multiplier during bursts (1.0 = no burstiness).
    pub burst_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's Nasdaq-trace workload (Fig. 7a).
    pub fn nasdaq_like(messages: usize) -> Self {
        TraceConfig {
            kind: TraceKind::NasdaqLike,
            messages,
            messages_per_packet: 1,
            rate_msgs_per_sec: 500_000.0,
            target_symbol: "GOOGL".into(),
            target_fraction: 0.005,
            symbols: 200,
            zipf_s: 1.1,
            add_order_fraction: 0.4,
            burst_period_us: 10_000,
            burst_len_us: 1_000,
            burst_multiplier: 5.0,
            seed: 0x830_2017,
        }
    }

    /// The paper's synthetic feed (Fig. 7b).
    pub fn synthetic(messages: usize) -> Self {
        TraceConfig {
            kind: TraceKind::SyntheticUniform,
            messages,
            messages_per_packet: 1,
            rate_msgs_per_sec: 500_000.0,
            target_symbol: "GOOGL".into(),
            target_fraction: 0.05,
            symbols: 200,
            zipf_s: 0.0,
            add_order_fraction: 1.0,
            burst_period_us: 50_000,
            burst_len_us: 300,
            burst_multiplier: 8.0,
            seed: 0x5EED,
        }
    }
}

/// One feed packet with its publication time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPacket {
    /// Publication time, nanoseconds from trace start.
    pub time_ns: u64,
    /// Full Ethernet frame.
    pub bytes: Vec<u8>,
    /// Number of target-symbol add-orders inside (ground truth for the
    /// latency experiment).
    pub target_messages: usize,
}

/// The canonical engine-bench feed: a steady add-order-only stream with
/// no target symbol and no bursts. Every engine bench replays the same
/// shape so their rows are comparable; hoisting the config here keeps
/// them from drifting apart.
pub fn bench_feed(messages: usize) -> Vec<TimedPacket> {
    synthesize_feed(&TraceConfig {
        target_fraction: 0.0,
        add_order_fraction: 1.0,
        burst_multiplier: 1.0,
        ..TraceConfig::synthetic(messages)
    })
}

/// Synthesizes a feed.
pub fn synthesize_feed(cfg: &TraceConfig) -> Vec<TimedPacket> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.symbols.max(1), cfg.zipf_s);
    let feed_cfg = FeedConfig::default();

    let mut out = Vec::with_capacity(cfg.messages / cfg.messages_per_packet.max(1) + 1);
    let mut now_ns: f64 = 0.0;
    let mut seq: u64 = 0;
    let mut order_ref: u64 = 1;
    let mut generated = 0usize;

    while generated < cfg.messages {
        let k = cfg.messages_per_packet.max(1).min(cfg.messages - generated);
        let mut msgs = Vec::with_capacity(k);
        let mut target_count = 0usize;
        for _ in 0..k {
            let msg = if rng.gen_bool(cfg.target_fraction.clamp(0.0, 1.0)) {
                target_count += 1;
                ItchMessage::AddOrder(new_order(
                    &mut rng,
                    &cfg.target_symbol,
                    &mut order_ref,
                    now_ns,
                ))
            } else if rng.gen_bool(cfg.add_order_fraction.clamp(0.0, 1.0)) {
                let sym = stock_symbol(zipf.sample(&mut rng));
                ItchMessage::AddOrder(new_order(&mut rng, &sym, &mut order_ref, now_ns))
            } else {
                noise_message(&mut rng, &zipf, &mut order_ref)
            };
            msgs.push(msg);
        }
        let bytes = build_feed_packet(&feed_cfg, seq, &msgs);
        out.push(TimedPacket {
            time_ns: now_ns as u64,
            bytes,
            target_messages: target_count,
        });
        seq += msgs.len() as u64;
        generated += k;

        // Arrival process: exponential interarrivals; the rate rises by
        // `burst_multiplier` inside periodic burst windows.
        let in_burst = cfg.burst_multiplier > 1.0
            && ((now_ns as u64 / 1000) % cfg.burst_period_us.max(1)) < cfg.burst_len_us;
        let rate = cfg.rate_msgs_per_sec / cfg.messages_per_packet.max(1) as f64
            * if in_burst { cfg.burst_multiplier } else { 1.0 };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dt_sec = -u.ln() / rate.max(1.0);
        now_ns += dt_sec * 1e9;
    }
    out
}

fn new_order(rng: &mut StdRng, symbol: &str, order_ref: &mut u64, now_ns: f64) -> AddOrder {
    let mut a = AddOrder::new(
        symbol,
        if rng.gen_bool(0.5) {
            Side::Buy
        } else {
            Side::Sell
        },
        rng.gen_range(1..=1000) * 100,
        rng.gen_range(1..=5000) * 100,
    );
    a.order_ref = *order_ref;
    a.timestamp_ns = (now_ns as u64) & 0x0000_ffff_ffff_ffff;
    *order_ref += 1;
    a
}

fn noise_message(rng: &mut StdRng, zipf: &Zipf, order_ref: &mut u64) -> ItchMessage {
    let r = *order_ref;
    *order_ref += 1;
    match rng.gen_range(0..4u8) {
        0 => ItchMessage::OrderExecuted {
            order_ref: r,
            shares: rng.gen_range(1..1000),
            match_no: r,
        },
        1 => ItchMessage::OrderCancel {
            order_ref: r,
            shares: rng.gen_range(1..1000),
        },
        2 => ItchMessage::OrderDelete { order_ref: r },
        _ => ItchMessage::Trade {
            order_ref: r,
            side: Side::Buy,
            shares: rng.gen_range(1..1000),
            stock: camus_itch::itch::encode_stock(&stock_symbol(zipf.sample(rng))),
            price: rng.gen_range(1..500_000),
            match_no: r,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_itch::parse_feed_packet;

    #[test]
    fn nasdaq_like_hits_target_fraction() {
        let cfg = TraceConfig::nasdaq_like(100_000);
        let trace = synthesize_feed(&cfg);
        let total: usize = trace.len();
        let targets: usize = trace.iter().map(|p| p.target_messages).sum();
        let frac = targets as f64 / total as f64;
        assert!((frac - 0.005).abs() < 0.002, "target fraction {frac}");
    }

    #[test]
    fn synthetic_hits_target_fraction() {
        let cfg = TraceConfig::synthetic(50_000);
        let trace = synthesize_feed(&cfg);
        let targets: usize = trace.iter().map(|p| p.target_messages).sum();
        let frac = targets as f64 / trace.len() as f64;
        assert!((frac - 0.05).abs() < 0.01, "target fraction {frac}");
    }

    #[test]
    fn packets_are_parseable_and_counted() {
        let cfg = TraceConfig {
            messages_per_packet: 3,
            ..TraceConfig::synthetic(99)
        };
        let trace = synthesize_feed(&cfg);
        assert_eq!(trace.len(), 33);
        let mut expected_seq = 0u64;
        for p in &trace {
            let (seq, msgs) = parse_feed_packet(&p.bytes).unwrap();
            assert_eq!(seq, expected_seq);
            assert_eq!(msgs.len(), 3);
            expected_seq += 3;
            let targets = msgs
                .iter()
                .filter(|m| matches!(m, ItchMessage::AddOrder(a) if a.symbol() == "GOOGL"))
                .count();
            assert_eq!(targets, p.target_messages);
        }
    }

    #[test]
    fn times_are_monotonic() {
        let trace = synthesize_feed(&TraceConfig::nasdaq_like(5_000));
        for w in trace.windows(2) {
            assert!(w[1].time_ns >= w[0].time_ns);
        }
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        // With a strong burst multiplier, interarrival variance is far
        // higher than the smooth feed's.
        let bursty = synthesize_feed(&TraceConfig::nasdaq_like(20_000));
        let smooth = synthesize_feed(&TraceConfig {
            burst_multiplier: 1.0,
            ..TraceConfig::nasdaq_like(20_000)
        });
        let cv = |t: &[TimedPacket]| {
            let d: Vec<f64> = t
                .windows(2)
                .map(|w| (w[1].time_ns - w[0].time_ns) as f64)
                .collect();
            let mean = d.iter().sum::<f64>() / d.len() as f64;
            let var = d.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / d.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&bursty) > cv(&smooth),
            "{} <= {}",
            cv(&bursty),
            cv(&smooth)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TraceConfig::synthetic(500);
        assert_eq!(synthesize_feed(&cfg), synthesize_feed(&cfg));
    }
}
