//! Fabric differential-test harness: the pieces the spine shares with
//! the oracle.
//!
//! A fabric routes each raw event to the leaf that owns its sharding
//! symbol, so both the spine and the differential tests need to pull
//! the symbol straight out of the wire bytes — the same spec-driven
//! extraction [`naive_ports_for_event`](crate::naive_ports_for_event)
//! uses, packaged as a reusable shard function.

use std::sync::Arc;

use camus_lang::Spec;
use camus_pipeline::bits::extract_bits;

/// A packet → shard-key function, structurally identical to
/// `camus_engine::ShardFn` (that alias is `Arc<dyn Fn(&[u8]) -> u64 +
/// Send + Sync>`; this crate sits below the engine in the dependency
/// order, so it spells the type out).
pub type RawExtractor = Arc<dyn Fn(&[u8]) -> u64 + Send + Sync>;

/// Builds an extractor for `field` of a raw-encapsulated (single
/// header, no network stack) spec: the field's big-endian bits at its
/// declared offset. Short packets extract as 0 — they will be parse
/// dropped by every pipeline identically, so where they route is
/// irrelevant as long as it is deterministic.
///
/// Returns `None` when the spec has no header type or no such field.
pub fn raw_field_extractor(spec: &Spec, field: &str) -> Option<RawExtractor> {
    let ht = spec.header_types.first()?;
    let f = ht.field(field)?;
    let (off, bits) = (u64::from(f.bit_offset), f.bits);
    Some(Arc::new(move |pkt: &[u8]| {
        extract_bits(pkt, off, bits).unwrap_or(0)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siena::SienaConfig;

    #[test]
    fn extractor_matches_event_generation() {
        let siena = SienaConfig {
            subscriptions: 4,
            int_attributes: 2,
            symbol_attributes: 1,
            symbol_alphabet: 8,
            seed: 7,
            ..SienaConfig::default()
        };
        let wl = siena.generate();
        let extract = raw_field_extractor(&wl.spec, "sym0").expect("sym0 exists");
        for ev in siena.generate_events(&wl, 32) {
            let got = extract(&ev);
            // The extracted value must be one of the alphabet's encoded
            // symbols: re-encode all of them and check membership.
            let ok = (0..8).any(|i| {
                let name = crate::siena::symbol_name(i);
                camus_lang::symbol::encode_symbol(&name, 64) == got
            });
            assert!(ok, "extracted {got:#x} is not an alphabet symbol");
        }
        // Truncated packets extract deterministically.
        assert_eq!(extract(&[]), 0);
    }
}
