//! The Figure 5c workload: ITCH subscriptions of the form
//! `stock == S ∧ price > P : fwd(H)`, "where S is one of a 100 stock
//! symbols, P is in the range (0, 1000) and H is one of 200 end-hosts"
//! (§4, "To measure our compiler's runtime").

use camus_lang::ast::{Action, Atom, Cond, FieldRef, Operand, RelOp, Rule, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the ITCH subscription generator.
#[derive(Debug, Clone)]
pub struct ItchSubsConfig {
    /// Number of subscriptions.
    pub subscriptions: usize,
    /// Symbol universe size (paper: 100).
    pub symbols: usize,
    /// Price threshold range, exclusive upper bound (paper: 1000).
    pub price_range: u64,
    /// Number of end-hosts / switch ports (paper: 200).
    pub hosts: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ItchSubsConfig {
    fn default() -> Self {
        ItchSubsConfig {
            subscriptions: 1000,
            symbols: 100,
            price_range: 1000,
            hosts: 200,
            seed: 0x17C4,
        }
    }
}

/// The deterministic symbol universe used by the generator (and by the
/// matching trace synthesizer): `STK000`, `STK001`, ...
pub fn stock_symbol(i: usize) -> String {
    format!("STK{i:03}")
}

/// Generates the subscription set.
pub fn generate_itch_subscriptions(cfg: &ItchSubsConfig) -> Vec<Rule> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.subscriptions)
        .map(|_| {
            let sym = stock_symbol(rng.gen_range(0..cfg.symbols));
            let price = rng.gen_range(0..cfg.price_range);
            let host = rng.gen_range(1..=cfg.hosts);
            let cond = Cond::Atom(Atom {
                operand: Operand::Field(FieldRef::short("stock")),
                op: RelOp::Eq,
                value: Value::Symbol(sym),
            })
            .and(Cond::Atom(Atom {
                operand: Operand::Field(FieldRef::short("price")),
                op: RelOp::Gt,
                value: Value::Int(price),
            }));
            Rule::new(cond, vec![Action::Fwd(vec![host])])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_shape() {
        let cfg = ItchSubsConfig {
            subscriptions: 50,
            ..Default::default()
        };
        let rules = generate_itch_subscriptions(&cfg);
        assert_eq!(rules.len(), 50);
        for r in &rules {
            assert_eq!(r.condition.atom_count(), 2);
            assert_eq!(r.actions.len(), 1);
            match &r.actions[0] {
                Action::Fwd(ports) => {
                    assert_eq!(ports.len(), 1);
                    assert!((1..=200).contains(&ports[0]));
                }
                a => panic!("unexpected action {a:?}"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ItchSubsConfig::default();
        assert_eq!(
            generate_itch_subscriptions(&cfg),
            generate_itch_subscriptions(&cfg)
        );
        let other = ItchSubsConfig {
            seed: 9,
            ..Default::default()
        };
        assert_ne!(
            generate_itch_subscriptions(&cfg),
            generate_itch_subscriptions(&other)
        );
    }

    #[test]
    fn symbols_stay_in_universe() {
        let cfg = ItchSubsConfig {
            subscriptions: 200,
            symbols: 5,
            ..Default::default()
        };
        for r in generate_itch_subscriptions(&cfg) {
            let s = r.condition.to_string();
            assert!((0..5).any(|i| s.contains(&stock_symbol(i))), "{s}");
        }
    }
}
