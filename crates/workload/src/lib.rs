//! # camus-workload — workload generators for the evaluation
//!
//! Reimplementations of the workloads §4 evaluates with:
//!
//! * [`siena`] — a clone of the *Siena Synthetic Benchmark Generator*'s
//!   subscription/event model (attribute universe, per-subscription
//!   predicate counts, operator and value distributions), used for the
//!   compiler space-efficiency sweeps of Figures 5a and 5b;
//! * [`itch_subs`] — the Figure 5c workload: ITCH subscriptions of the
//!   form `stock == S ∧ price > P : fwd(H)` with `S` one of 100 stock
//!   symbols, `P ∈ (0, 1000)` and `H` one of 200 end-hosts;
//! * [`trace`] — market-data feed synthesis for the Figure 7 latency
//!   experiments: a Nasdaq-like trace (bursty arrivals, Zipf symbol
//!   popularity, 0.5 % GOOGL) and a uniform synthetic feed (5 % GOOGL);
//! * [`zipf`] — the Zipf sampler behind symbol popularity.
//!
//! Two additions serve the update-plane (live churn) work:
//!
//! * [`churn`] — timed add/remove schedules over Siena and ITCH rule
//!   sets, driving the incremental compiler and the engine's update
//!   plane;
//! * [`interp`] — the naive AST interpreter the differential tests use
//!   as their ground-truth oracle;
//! * [`faults`] — deterministic fault-injection plans (wire corruption,
//!   scripted worker panics/deaths, capacity bombs) for the robustness
//!   soak tests.
//!
//! All generators are deterministic given a seed.

pub mod bus_churn;
pub mod churn;
pub mod fabric;
pub mod faults;
pub mod interp;
pub mod itch_subs;
pub mod siena;
pub mod soak;
pub mod trace;
pub mod zipf;

pub use bus_churn::{run_bus_churn, BusChurnConfig, BusChurnReport};
pub use churn::{itch_churn, siena_churn, ChurnConfig, ChurnSchedule, ChurnStep, SienaChurn};
pub use fabric::{raw_field_extractor, RawExtractor};
pub use faults::{
    capacity_bomb, ChaosConfig, ChaosPlan, FaultPlan, FaultPlanConfig, Mutation, NodeEvent,
    NodeEventKind,
};
pub use interp::{eval_cond, naive_ports, naive_ports_for_event};
pub use itch_subs::{generate_itch_subscriptions, ItchSubsConfig};
pub use siena::{SienaConfig, SienaWorkload};
pub use soak::soak_seeds;
pub use trace::{bench_feed, synthesize_feed, TimedPacket, TraceConfig, TraceKind};
