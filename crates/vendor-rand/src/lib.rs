//! Vendored, std-only stand-in for the subset of the crates.io `rand`
//! 0.8 API this workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! external dependencies cannot be downloaded; the workload generators
//! only need a deterministic, seedable PRNG with `gen`, `gen_range` and
//! `gen_bool`. This crate provides exactly that, source-compatible with
//! the call sites (`StdRng::seed_from_u64`, `Rng` bounds, half-open and
//! inclusive integer ranges, `f64` ranges).
//!
//! The generator is xoshiro256** seeded via SplitMix64 — *not* the same
//! stream as upstream `rand`'s ChaCha12-based `StdRng`. Every consumer
//! in this workspace only relies on determinism-per-seed and reasonable
//! statistical quality, both of which hold; absolute draw values differ
//! from upstream.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Range arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn` / generic `R: Rng + ?Sized`
/// receivers, which the Zipf sampler relies on).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`f64` → uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → the full double mantissa, exactly representable.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform integer in `[0, span)`; `span` must be nonzero. Uses 128-bit
/// multiply-shift (Lemire) rather than modulo — unbiased enough for
/// workload synthesis and fast.
fn below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Integer types usable as `gen_range` endpoints. A single generic
/// `SampleRange` impl (rather than one impl per type) keeps inference
/// working at call sites like `rng.gen_range(1..=1000) * 100u32`, where
/// the element type is only pinned down by surrounding arithmetic.
pub trait UniformInt: Copy + PartialOrd {
    /// Reinterprets as raw bits, sign-extending signed types so that
    /// `end_bits - start_bits` is the span for ordered ranges.
    fn to_bits(self) -> u64;
    /// Inverse of [`UniformInt::to_bits`] (truncating).
    fn from_bits(bits: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            fn to_bits(self) -> u64 {
                self as u64
            }
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )+};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.to_bits().wrapping_sub(self.start.to_bits());
        T::from_bits(self.start.to_bits().wrapping_add(below(rng, span)))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = end.to_bits().wrapping_sub(start.to_bits());
        if span == u64::MAX {
            return T::from_bits(rng.next_u64());
        }
        T::from_bits(start.to_bits().wrapping_add(below(rng, span + 1)))
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman &
    /// Vigna), seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from narrow state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u8 = r.gen_range(0..4u8);
            assert!(v < 4);
            let w = r.gen_range(10..=12u16);
            assert!((10..=12).contains(&w));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01, "{hits}");
    }

    #[test]
    fn works_through_unsized_receivers() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut r = StdRng::seed_from_u64(3);
        let dynr: &mut dyn super::RngCore = &mut r;
        assert!(draw(dynr) < 10);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 500, "{counts:?}");
        }
    }
}
