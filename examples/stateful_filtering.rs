//! Stateful subscriptions (§2): "stock == GOOGL ∧ avg(price) > 50 :
//! fwd(1)" — the moving average lives in a switch register with a
//! tumbling window, updated when the rest of the rule matches, read as
//! a pseudo-field by the match pipeline.
//!
//! Also shows an explicit `@query_counter` driven by rule actions:
//! count GOOGL orders per window and divert the feed to a monitoring
//! port when the window gets hot.
//!
//! ```text
//! cargo run --example stateful_filtering
//! ```

use camus::compiler::{Compiler, CompilerOptions};
use camus::itch::itch::{AddOrder, Side};
use camus::lang::{parse_program, parse_spec};

fn main() {
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).expect("spec parses");

    // Rule 1: plain GOOGL subscription.
    // Rule 2: GOOGL *and* the windowed average price above 50 → also
    //         forward to the momentum desk on port 2.
    // Rule 3: every GOOGL order bumps my_counter (declared in the spec
    //         with a 100 µs tumbling window)…
    // Rule 4: …and when the window counts more than 5 orders, mirror to
    //         the surveillance port 7.
    let rules = parse_program(
        "stock == GOOGL : fwd(1)\n\
         stock == GOOGL and avg(price) > 50 : fwd(2)\n\
         stock == GOOGL : my_counter <- incr()\n\
         my_counter > 5 : fwd(7)",
    )
    .expect("rules parse");

    let compiler = Compiler::new(spec, CompilerOptions::raw()).expect("config ok");
    let program = compiler.compile(&rules).expect("rules compile");
    println!(
        "registers allocated: {} (avg(price) + my_counter)",
        program.pipeline.registers.len()
    );
    let mut pipeline = program.pipeline;

    let send = |label: &str, price: u32, t_us: u64, pipeline: &mut camus::pipeline::Pipeline| {
        let msg = AddOrder::new("GOOGL", Side::Buy, 100, price);
        let d = pipeline
            .process(&msg.encode(), t_us)
            .expect("packet parses");
        let ports: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        println!("  t={t_us:>4}us  {label:<26} -> {ports:?}");
    };

    println!("\n== moving average gate (window 100us) ==");
    // Low prices first: avg stays below the 50 threshold; port 2 silent.
    send("GOOGL @ 10", 10, 0, &mut pipeline);
    send("GOOGL @ 20", 20, 10, &mut pipeline);
    // High prices pull the window average over 50 → port 2 joins.
    send("GOOGL @ 200", 200, 20, &mut pipeline);
    send("GOOGL @ 200", 200, 30, &mut pipeline);
    // After the window tumbles, the average resets.
    send("GOOGL @ 10 (new window)", 10, 150, &mut pipeline);

    println!("\n== hot-symbol counter (my_counter > 5 in a 100us window) ==");
    for i in 0..8 {
        send("GOOGL burst", 30, 200 + i, &mut pipeline);
    }
    println!("  (port 7 appears once more than five orders landed in the window)");
}
