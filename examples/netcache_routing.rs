//! Content-identifier routing for in-network caching (§4 "Other
//! applications": "Packet subscriptions would also be a useful
//! abstraction for in-network caching, which routes based on content
//! identifier (e.g., NetCache)").
//!
//! A key-value cluster partitions its key space across storage nodes;
//! hot keys are additionally mirrored to a rack-switch cache port.
//! Routing GETs on the *key* (not the server address) means
//! repartitioning and hot-set changes are rule updates — installed
//! here through the incremental compiler, which also reports how many
//! table entries the control plane actually had to touch.
//!
//! ```text
//! cargo run --example netcache_routing
//! ```

use camus::compiler::{CompilerOptions, IncrementalCompiler};
use camus::lang::{parse_program, parse_spec};

/// GET/PUT request header: 8-bit opcode, 64-bit key id, 32-bit client.
const KV_SPEC: &str = r#"
header_type kv_req_t {
    fields {
        opcode: 8;
        key: 64;
        client: 32;
    }
}
header kv_req_t req;

@query_field_exact(req.opcode)
@query_field(req.key)
"#;

const GET: u8 = 1;
const PUT: u8 = 2;

fn packet(opcode: u8, key: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(13);
    b.push(opcode);
    b.extend_from_slice(&key.to_be_bytes());
    b.extend_from_slice(&0u32.to_be_bytes());
    b
}

fn main() {
    let spec = parse_spec(KV_SPEC).expect("spec parses");

    // The alphabet session: partition boundaries and the hot keys we
    // might ever pin. (Predicates outside this set require a full
    // recompile — the paper's static/dynamic split.)
    let alphabet = parse_program(
        "opcode == 1 and key < 1000000 : fwd(10)\n\
         opcode == 1 and key >= 1000000 and key < 2000000 : fwd(11)\n\
         opcode == 1 and key >= 2000000 : fwd(12)\n\
         opcode == 2 and key < 1000000 : fwd(10)\n\
         opcode == 2 and key >= 1000000 and key < 2000000 : fwd(11)\n\
         opcode == 2 and key >= 2000000 : fwd(12)\n\
         key == 42 : fwd(30)\n\
         key == 1500000 : fwd(30)\n\
         key == 2999999 : fwd(30)",
    )
    .expect("alphabet parses");

    let mut session =
        IncrementalCompiler::new(spec, &CompilerOptions::raw(), &alphabet).expect("session ok");

    // Generation 1: the partition map only.
    let r1 = session
        .install(
            &parse_program(
                "opcode == 1 and key < 1000000 : fwd(10)\n\
                 opcode == 1 and key >= 1000000 and key < 2000000 : fwd(11)\n\
                 opcode == 1 and key >= 2000000 : fwd(12)\n\
                 opcode == 2 and key < 1000000 : fwd(10)\n\
                 opcode == 2 and key >= 1000000 and key < 2000000 : fwd(11)\n\
                 opcode == 2 and key >= 2000000 : fwd(12)",
            )
            .unwrap(),
        )
        .expect("gen1 installs");
    println!(
        "gen1: {} entries installed (+{} -{} ={} kept)",
        r1.total_entries, r1.entries_added, r1.entries_removed, r1.entries_kept
    );

    let mut pipe = r1.pipeline;
    println!("\n== partition routing ==");
    for (label, pkt) in [
        ("GET key 42", packet(GET, 42)),
        ("GET key 1.5M", packet(GET, 1_500_000)),
        ("PUT key 2.9M", packet(PUT, 2_999_999)),
    ] {
        let d = pipe.process(&pkt, 0).unwrap();
        let ports: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        println!("  {label:<14} -> {ports:?}");
    }

    // Generation 2: telemetry says keys 42 and 1.5M are hot — mirror
    // their GETs to the cache port. An incremental install: the
    // partition entries are untouched.
    let r2 = session
        .install(&parse_program("key == 42 : fwd(30)\nkey == 1500000 : fwd(30)").unwrap())
        .expect("gen2 installs");
    println!(
        "\ngen2 (hot keys pinned): +{} -{} entries, {} reused in place",
        r2.entries_added, r2.entries_removed, r2.entries_kept
    );
    for d in &r2.deltas {
        println!(
            "  {:<18} +{} -{} ={}",
            d.table,
            d.added(),
            d.removed(),
            d.kept
        );
    }

    let mut pipe = r2.pipeline;
    println!("\n== with cache mirroring ==");
    for (label, pkt) in [
        ("GET key 42", packet(GET, 42)),
        ("GET key 43", packet(GET, 43)),
        ("GET key 1.5M", packet(GET, 1_500_000)),
        ("PUT key 42", packet(PUT, 42)),
    ] {
        let d = pipe.process(&pkt, 0).unwrap();
        let ports: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        println!("  {label:<14} -> {ports:?}");
    }
}
