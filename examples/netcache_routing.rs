//! Content-identifier routing for in-network caching (§4 "Other
//! applications": "Packet subscriptions would also be a useful
//! abstraction for in-network caching, which routes based on content
//! identifier (e.g., NetCache)").
//!
//! A key-value cluster partitions its key space across storage nodes;
//! hot keys are additionally mirrored to a rack-switch cache port.
//! Every rule matches on the *key* (and nothing else the parser
//! extracts), so the whole program is provably cacheable on `req.key`
//! — which lets the forwarding engine arm its decision cache: repeat
//! GETs for a hot key skip the match chain entirely. Repartitioning
//! and hot-set changes arrive as incremental rule updates, and each
//! install invalidates the cache so no stale decision ever leaks
//! across a generation.
//!
//! ```text
//! cargo run --example netcache_routing
//! ```

use std::sync::Arc;

use camus::compiler::{CompilerOptions, IncrementalCompiler};
use camus::engine::{Engine, EngineConfig};
use camus::lang::{parse_program, parse_spec};

/// GET/PUT request header: 8-bit opcode, 64-bit key id, 32-bit client.
/// The opcode stays in the spec (the parser extracts it for the
/// control plane) but no rule matches on it — a rule keyed on any
/// extracted field other than `req.key` would make decisions depend
/// on more than the key and disarm the cache.
const KV_SPEC: &str = r#"
header_type kv_req_t {
    fields {
        opcode: 8;
        key: 64;
        client: 32;
    }
}
header kv_req_t req;

@query_field_exact(req.opcode)
@query_field(req.key)
"#;

const GET: u8 = 1;

fn packet(opcode: u8, key: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(13);
    b.push(opcode);
    b.extend_from_slice(&key.to_be_bytes());
    b.extend_from_slice(&0u32.to_be_bytes());
    b
}

fn main() {
    let spec = parse_spec(KV_SPEC).expect("spec parses");

    // The alphabet session: partition boundaries and the hot keys we
    // might ever pin. (Predicates outside this set require a full
    // recompile — the paper's static/dynamic split.)
    let alphabet = parse_program(
        "key < 1000000 : fwd(10)\n\
         key >= 1000000 and key < 2000000 : fwd(11)\n\
         key >= 2000000 : fwd(12)\n\
         key == 42 : fwd(30)\n\
         key == 1500000 : fwd(30)\n\
         key == 2999999 : fwd(30)",
    )
    .expect("alphabet parses");

    let mut session =
        IncrementalCompiler::new(spec, &CompilerOptions::raw(), &alphabet).expect("session ok");

    // Generation 1: the partition map only.
    let r1 = session
        .install(
            &parse_program(
                "key < 1000000 : fwd(10)\n\
                 key >= 1000000 and key < 2000000 : fwd(11)\n\
                 key >= 2000000 : fwd(12)",
            )
            .unwrap(),
        )
        .expect("gen1 installs");
    println!(
        "gen1: {} entries installed (+{} -{} ={} kept)",
        r1.total_entries, r1.entries_added, r1.entries_removed, r1.entries_kept
    );

    // The forwarding engine, with its decision cache keyed on the
    // content identifier. Sharding also hashes the key bytes, so one
    // key always lands on one worker (and one cache).
    let cfg = EngineConfig {
        workers: 1,
        batch_packets: 8,
        record_decisions: true,
        decision_cache: Some("req.key".into()),
        ..EngineConfig::default()
    };
    let shard = Arc::new(|pkt: &[u8]| {
        let mut key = [0u8; 8];
        if pkt.len() >= 9 {
            key.copy_from_slice(&pkt[1..9]);
        }
        u64::from_be_bytes(key)
    });
    let mut engine = Engine::start(&r1.pipeline, &cfg, shard);

    // A skewed GET trace: the classic NetCache shape, most traffic on
    // a few hot keys.
    let hot = [42u64, 1_500_000];
    let trace: Vec<Vec<u8>> = (0..600)
        .map(|i| {
            let key = if i % 4 == 3 {
                2_000_000 + (i as u64 % 50) * 17 // cold tail
            } else {
                hot[i % hot.len()] // hot head
            };
            packet(GET, key)
        })
        .collect();
    for pkt in &trace {
        engine.submit(pkt, 0);
    }
    engine.quiesce().expect("trace drains");

    // Generation 2: telemetry says keys 42 and 1.5M are hot — mirror
    // their GETs to the cache port. An incremental install; the swap
    // also invalidates every worker's decision cache, so the pinned
    // keys re-miss once and then hit with their *new* decision.
    let r2 = session
        .install(&parse_program("key == 42 : fwd(30)\nkey == 1500000 : fwd(30)").unwrap())
        .expect("gen2 installs");
    println!(
        "gen2 (hot keys pinned): +{} -{} entries, {} reused in place",
        r2.entries_added, r2.entries_removed, r2.entries_kept
    );
    for d in &r2.deltas {
        println!(
            "  {:<18} +{} -{} ={}",
            d.table,
            d.added(),
            d.removed(),
            d.kept
        );
    }
    engine.apply_update(&r2).expect("gen2 swaps in");
    for pkt in &trace {
        engine.submit(pkt, 0);
    }

    let report = engine.finish();
    assert!(report.error.is_none(), "{:?}", report.error);
    let h = &report.hotpath;
    let total = h.cache_hits + h.cache_misses;
    println!("\n== decision cache ==");
    println!(
        "  {} lookups: {} hits, {} misses ({:.1}% hit rate)",
        total,
        h.cache_hits,
        h.cache_misses,
        100.0 * h.cache_hits as f64 / total.max(1) as f64
    );

    println!("\n== routing (second generation) ==");
    let mark = trace.len();
    for (label, idx) in [
        ("GET key 42   (hot, mirrored)", 0),
        ("GET key 1.5M (hot, mirrored)", 1),
        ("GET cold key (partition only)", 3),
    ] {
        let ports: Vec<u16> = report.decisions[mark + idx]
            .ports
            .iter()
            .map(|p| p.0)
            .collect();
        println!("  {label:<30} -> {ports:?}");
    }
}
