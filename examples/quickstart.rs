//! Quickstart: compile three subscriptions over the paper's ITCH
//! message format and watch the compiled switch program forward
//! packets.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use camus::compiler::{Compiler, CompilerOptions};
use camus::itch::itch::{AddOrder, Side};
use camus::lang::{parse_program, parse_spec};

fn main() {
    // The message-format specification (paper Figure 2): a P4 header
    // declaration plus @query_field annotations.
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).expect("spec parses");

    // Subscriptions in the paper's Figure 1 syntax.
    let rules = parse_program(
        "stock == GOOGL : fwd(1)\n\
         stock == MSFT and price > 1000 : fwd(2,3)\n\
         shares > 100 and shares < 10000 : fwd(4)",
    )
    .expect("rules parse");

    // Static + dynamic compilation. `raw()` skips the market-data
    // encapsulation so we can feed bare ITCH messages below; see the
    // itch_pubsub example for the full Ethernet/IP/UDP/MoldUDP stack.
    let compiler = Compiler::new(spec, CompilerOptions::raw()).expect("compiler config ok");
    let program = compiler.compile(&rules).expect("rules compile");

    println!("== compiled program ==");
    println!("tables:");
    for (name, entries) in &program.stats.table_entries {
        println!("  {name:<24} {entries} entries");
    }
    println!("multicast groups: {}", program.stats.mcast_groups);
    println!("BDD nodes:        {}", program.stats.bdd_nodes);
    println!(
        "placement:        {} stages of {}, fits={}",
        program.placement.stages_used,
        program.placement.model.name,
        program.placement.fits()
    );

    println!("\n== generated P4 (first 20 lines) ==");
    for line in program.p4_source.lines().take(20) {
        println!("  {line}");
    }

    println!("\n== control-plane rules (first 10) ==");
    for line in program.control_plane.lines().take(10) {
        println!("  {line}");
    }

    // Execute the program on a few messages.
    let mut pipeline = program.pipeline;
    println!("\n== forwarding decisions ==");
    let packets = [
        (
            "GOOGL buy 100 @ 500",
            AddOrder::new("GOOGL", Side::Buy, 100, 500),
        ),
        (
            "MSFT sell 50 @ 2000",
            AddOrder::new("MSFT", Side::Sell, 50, 2000),
        ),
        (
            "MSFT sell 50 @ 900",
            AddOrder::new("MSFT", Side::Sell, 50, 900),
        ),
        (
            "ORCL buy 5000 @ 10",
            AddOrder::new("ORCL", Side::Buy, 5000, 10),
        ),
        (
            "GOOGL buy 500 @ 10",
            AddOrder::new("GOOGL", Side::Buy, 500, 10),
        ),
    ];
    for (label, msg) in packets {
        let decision = pipeline.process(&msg.encode(), 0).expect("packet parses");
        let ports: Vec<u16> = decision.ports.iter().map(|p| p.0).collect();
        println!("  {label:<22} -> {ports:?}");
    }
}
