//! In-network L4 load balancing (§1's Maglev/Katran motivation):
//! map virtual-IP traffic onto backend pools with packet
//! subscriptions, entirely in the data plane.
//!
//! The "hash" is a slice of the client address (a real deployment
//! would add a hash extern; range predicates over a uniform field give
//! the same weighted-split semantics), so weighted pools are just
//! range subscriptions — and draining a backend is a rule update.
//!
//! ```text
//! cargo run --example load_balancer
//! ```

use camus::compiler::{Compiler, CompilerOptions};
use camus::lang::{parse_program, parse_spec};

/// The fields an L4 balancer routes on.
const L4_SPEC: &str = r#"
header_type l4_hdr_t {
    fields {
        vip: 32;
        dst_port: 16;
        client_hash: 16;
    }
}
header l4_hdr_t l4;

@query_field_exact(l4.vip)
@query_field(l4.dst_port)
@query_field(l4.client_hash)
"#;

const VIP_WEB: u32 = 0x0a00_0064; // 10.0.0.100
const VIP_API: u32 = 0x0a00_00c8; // 10.0.0.200

fn packet(vip: u32, dst_port: u16, client_hash: u16) -> Vec<u8> {
    let mut b = Vec::with_capacity(8);
    b.extend_from_slice(&vip.to_be_bytes());
    b.extend_from_slice(&dst_port.to_be_bytes());
    b.extend_from_slice(&client_hash.to_be_bytes());
    b
}

fn main() {
    let spec = parse_spec(L4_SPEC).expect("spec parses");

    // Web VIP :80 → 3 backends weighted 50/25/25 by hash ranges;
    // API VIP :443 → 2 backends 50/50; everything else on the API VIP
    // is mirrored to a scrubber (port 9) as well.
    let rules = parse_program(&format!(
        "vip == {VIP_WEB} and dst_port == 80 and client_hash < 32768 : fwd(1)\n\
         vip == {VIP_WEB} and dst_port == 80 and client_hash >= 32768 and client_hash < 49152 : fwd(2)\n\
         vip == {VIP_WEB} and dst_port == 80 and client_hash >= 49152 : fwd(3)\n\
         vip == {VIP_API} and dst_port == 443 and client_hash < 32768 : fwd(4)\n\
         vip == {VIP_API} and dst_port == 443 and client_hash >= 32768 : fwd(5)\n\
         vip == {VIP_API} and dst_port != 443 : fwd(9)"
    ))
    .expect("rules parse");

    let compiler = Compiler::new(spec, CompilerOptions::raw()).expect("config ok");
    let program = compiler.compile(&rules).expect("rules compile");
    let mut pipeline = program.pipeline;

    println!(
        "compiled VIP map: {} entries over {} tables, fits={}",
        program.stats.total_entries,
        program.stats.table_entries.len(),
        program.placement.fits()
    );

    // Spray synthetic connections and count the split per backend.
    let mut per_backend = [0usize; 10];
    let mut hash: u32 = 0x9e37;
    for i in 0..10_000u32 {
        hash = hash.wrapping_mul(0x01000193) ^ i;
        let d = pipeline
            .process(&packet(VIP_WEB, 80, (hash & 0xffff) as u16), 0)
            .expect("packet parses");
        for p in &d.ports {
            per_backend[usize::from(p.0).min(9)] += 1;
        }
    }
    println!("\n== web VIP split over 10k connections (want ~50/25/25) ==");
    for (b, &count) in per_backend.iter().enumerate().take(4).skip(1) {
        println!(
            "  backend {b}: {count:>5} connections ({:>4.1}%)",
            count as f64 / 100.0
        );
    }

    // A few explicit flows.
    println!("\n== flow decisions ==");
    let flows = [
        ("api :443, hash 100", packet(VIP_API, 443, 100)),
        ("api :443, hash 60000", packet(VIP_API, 443, 60000)),
        ("api :8080 (off-VIP-port)", packet(VIP_API, 8080, 100)),
        ("unknown vip", packet(0x0a00_0001, 80, 100)),
    ];
    for (label, p) in flows {
        let d = pipeline.process(&p, 0).expect("packet parses");
        let ports: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        println!("  {label:<26} -> {ports:?}");
    }
}
