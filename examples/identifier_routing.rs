//! Identifier-based routing (§1): route on a service/container
//! *identifier* carried in an application header instead of on IP
//! addresses, so services keep their identity when containers move.
//!
//! The message format is user-defined — packet subscriptions "can be
//! written on arbitrary, user-defined packet formats" (§1) — and
//! migration is a pure control-plane update: recompile the rules, no
//! pipeline re-imaging.
//!
//! ```text
//! cargo run --example identifier_routing
//! ```

use camus::compiler::{Compiler, CompilerOptions};
use camus::lang::{parse_program, parse_spec};

/// A small service-addressing header: 32-bit service id, 16-bit shard,
/// 8-bit message class.
const SERVICE_SPEC: &str = r#"
header_type svc_hdr_t {
    fields {
        service_id: 32;
        shard: 16;
        class: 8;
    }
}
header svc_hdr_t svc;

@query_field_exact(svc.service_id)
@query_field(svc.shard)
@query_field_exact(svc.class)
"#;

fn packet(service_id: u32, shard: u16, class: u8) -> Vec<u8> {
    let mut b = Vec::with_capacity(7);
    b.extend_from_slice(&service_id.to_be_bytes());
    b.extend_from_slice(&shard.to_be_bytes());
    b.push(class);
    b
}

fn compile_and_route(generation: &str, rules_src: &str) {
    let spec = parse_spec(SERVICE_SPEC).expect("spec parses");
    let rules = parse_program(rules_src).expect("rules parse");
    let compiler = Compiler::new(spec, CompilerOptions::raw()).expect("config ok");
    let program = compiler.compile(&rules).expect("rules compile");
    let mut pipeline = program.pipeline;

    println!(
        "== {generation} ({} entries) ==",
        program.stats.total_entries
    );
    let flows = [
        ("auth svc, shard 3", packet(1001, 3, 0)),
        ("auth svc, shard 40", packet(1001, 40, 0)),
        ("search svc, any", packet(2002, 7, 0)),
        ("search svc, control msg", packet(2002, 7, 9)),
        ("unknown svc", packet(9999, 0, 0)),
    ];
    for (label, p) in flows {
        let d = pipeline.process(&p, 0).expect("packet parses");
        let ports: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        println!("  {label:<24} -> {ports:?}");
    }
    println!();
}

fn main() {
    // Generation 1: the auth service lives on hosts behind ports 10/11
    // (sharded), search on port 20; control-plane messages (class 9)
    // are mirrored to a monitor on port 31.
    compile_and_route(
        "generation 1",
        "service_id == 1001 and shard < 32 : fwd(10)\n\
         service_id == 1001 and shard >= 32 : fwd(11)\n\
         service_id == 2002 : fwd(20)\n\
         class == 9 : fwd(31)",
    );

    // Generation 2: the auth containers migrated to the rack behind
    // port 12 — identical identifiers, new locations. Only the rules
    // change; the pipeline image (parser, tables) is untouched.
    compile_and_route(
        "generation 2 (auth service migrated)",
        "service_id == 1001 : fwd(12)\n\
         service_id == 2002 : fwd(20)\n\
         class == 9 : fwd(31)",
    );
}
