//! The paper's case study (§4, Figure 6): in-network pub/sub for
//! Nasdaq ITCH market data.
//!
//! A publisher multicasts a MoldUDP64 feed; three subscribers register
//! symbol subscriptions; the Camus-compiled switch splits the feed so
//! each subscriber receives only its symbols. We then replay the same
//! feed through the discrete-event simulator in both configurations
//! (host-side filtering vs. switch filtering) and print the Figure-7
//! style latency comparison.
//!
//! ```text
//! cargo run --release --example itch_pubsub
//! ```

use camus::compiler::{Compiler, CompilerOptions};
use camus::itch::parse_feed_packet;
use camus::lang::{parse_program, parse_spec};
use camus::netsim::{run_experiment, ExperimentConfig, FilterMode};
use camus::workload::{synthesize_feed, TraceConfig};

fn main() {
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).expect("spec parses");

    // Figure 6's three subscribers. The synthesized feed's symbol
    // universe is GOOGL plus STK000..STK199 (Zipf-popular in that
    // order), so the desks subscribe to the two hottest tickers next to
    // GOOGL.
    let rules = parse_program(
        "stock == GOOGL : fwd(1)\n\
         stock == STK000 : fwd(2)\n\
         stock == STK001 : fwd(3)\n\
         stock == GOOGL and shares > 10000 : fwd(3)", // desk 3 also watches big GOOGL orders
    )
    .expect("rules parse");

    // Default options = the full market-data encapsulation:
    // Ethernet / IPv4 / UDP / MoldUDP64, one evaluation per ITCH
    // message, selected on msg_type == 'A'.
    let compiler = Compiler::new(spec, CompilerOptions::default()).expect("config ok");
    let program = compiler.compile(&rules).expect("rules compile");
    println!(
        "compiled {} rules -> {} entries, {} multicast groups, fits={}",
        rules.len(),
        program.stats.total_entries,
        program.stats.mcast_groups,
        program.placement.fits()
    );

    // --- Functional demo: split a small feed. -------------------------
    let mut pipeline = program.pipeline;
    let trace = synthesize_feed(&TraceConfig {
        target_fraction: 0.02,
        ..TraceConfig::nasdaq_like(2_000)
    });
    let mut per_port = [0usize; 4];
    let mut delivered_msgs = 0usize;
    for pkt in &trace {
        let d = pipeline
            .process(&pkt.bytes, pkt.time_ns / 1000)
            .expect("feed parses");
        for p in &d.ports {
            per_port[usize::from(p.0).min(3)] += 1;
        }
        delivered_msgs += d.matched_messages;
    }
    println!("\n== feed split ({} packets) ==", trace.len());
    println!("  port 1 (GOOGL desk): {} packets", per_port[1]);
    println!("  port 2 (STK000 desk): {} packets", per_port[2]);
    println!("  port 3 (STK001 desk): {} packets", per_port[3]);
    println!("  matched messages:    {delivered_msgs}");

    // Sanity: decode one delivered packet to show it's a real feed.
    if let Some(pkt) = trace.iter().find(|p| p.target_messages > 0) {
        let (seq, msgs) = parse_feed_packet(&pkt.bytes).expect("well-formed feed");
        println!(
            "  e.g. seq {seq}: {} ITCH message(s), first type '{}'",
            msgs.len(),
            msgs[0].type_byte() as char
        );
    }

    // --- Latency experiment (Figure 7a, reduced size). ----------------
    println!("\n== latency: baseline (host filters) vs Camus (switch filters) ==");
    let feed = synthesize_feed(&TraceConfig::nasdaq_like(300_000));
    let cfg = ExperimentConfig::default();

    let baseline = run_experiment(&feed, FilterMode::Baseline, &cfg);

    let googl_only = parse_program("stock == GOOGL : fwd(1)").unwrap();
    let spec2 = parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    let prog2 = Compiler::new(spec2, CompilerOptions::default())
        .unwrap()
        .compile(&googl_only)
        .unwrap();
    let camus = run_experiment(&feed, FilterMode::Switch(Box::new(prog2.pipeline)), &cfg);

    for (label, r) in [("baseline", &baseline), ("camus", &camus)] {
        println!(
            "  {label:<9} p50={:>7.1}us p99={:>7.1}us max={:>7.1}us  <=50us: {:>6.2}%  host got {} of {} packets",
            r.stats.percentile(0.50) as f64 / 1000.0,
            r.stats.percentile(0.99) as f64 / 1000.0,
            r.stats.max() as f64 / 1000.0,
            r.stats.fraction_within(50_000) * 100.0,
            r.packets_to_subscriber,
            r.packets_published,
        );
    }
}
