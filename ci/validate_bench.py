#!/usr/bin/env python3
"""Schema validation for the bench result files under results/.

One schema per basename, shared by every CI bench job (this replaces
the inline heredoc validators that used to be duplicated across
.github/workflows/ci.yml):

    python3 ci/validate_bench.py results/BENCH_faults.json
    python3 ci/validate_bench.py results/TELEMETRY_engine.json --max-overhead-pct 5
    python3 ci/validate_bench.py results/*.json   # validates the known ones

Unknown basenames are an error unless --ignore-unknown is passed (the
glob form passes it), so a typo'd path cannot silently validate
nothing.
"""

import argparse
import json
import os
import sys


def fail(msg):
    sys.exit(f"validate_bench: {msg}")


def check_rows(name, rows, required, positive=()):
    """Common list-of-row-objects checks; returns the set of configs."""
    if not isinstance(rows, list) or not rows:
        fail(f"{name}: expected a non-empty list")
    configs = set()
    for i, row in enumerate(rows):
        missing = required - row.keys()
        if missing:
            fail(f"{name} row {i}: missing fields {sorted(missing)}")
        for field in positive:
            if row[field] <= 0:
                fail(f"{name} row {i}: non-positive {field} ({row[field]})")
        if "config" in row:
            configs.add(row["config"])
    return configs


def require_configs(name, configs, needed):
    if not needed <= configs:
        fail(f"{name}: missing rows {sorted(needed - configs)}")


def validate_engine(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "workers", "host_cores", "packets_per_iter",
            "ns_per_iter", "pkts_per_sec", "speedup_vs_sequential",
        },
        positive=("ns_per_iter", "pkts_per_sec"),
    )
    needed = {"sequential_batch"}
    for w in (1, 2, 4, 8):
        needed |= {f"engine_w{w}", f"engine_w{w}_telemetry"}
    require_configs(name, configs, needed)


def validate_churn(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "workers", "host_cores", "packets_per_iter",
            "updates_per_iter", "ns_per_iter", "pkts_per_sec",
            "update_latency_ns",
        },
        positive=("ns_per_iter",),
    )
    require_configs(
        name,
        configs,
        {"update_delta", "update_rebuild", "engine_no_churn", "engine_under_churn"},
    )


def validate_faults(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "workers", "host_cores", "packets_per_iter",
            "faults_per_iter", "ns_per_iter", "pkts_per_sec",
        },
        positive=("ns_per_iter",),
    )
    require_configs(
        name,
        configs,
        {
            "engine_clean_supervised", "engine_clean_unsupervised",
            "engine_corrupted_wire", "engine_scripted_panics",
            "admission_accept", "admission_reject",
        },
    )


def validate_compile(name, rows, args):
    check_rows(
        name,
        rows,
        {
            "workload", "subscriptions", "shards", "host_cores", "secs",
            "rules_per_sec", "peak_nodes", "reachable_nodes", "memo_hits",
            "memo_misses", "memo_hit_rate", "total_entries", "mcast_groups",
            "states",
        },
        positive=("secs", "rules_per_sec"),
    )
    # The pinned merge DAG must make output size shard-invariant.
    by_pool = {}
    for row in rows:
        key = (row["workload"], row["subscriptions"])
        by_pool.setdefault(key, set()).add(
            (row["total_entries"], row["mcast_groups"], row["states"])
        )
    for key, outputs in by_pool.items():
        if len(outputs) != 1:
            fail(f"{name} {key}: output differs across shard counts: {outputs}")


def validate_hotpath(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "workers", "cache", "host_cores", "packets_per_iter",
            "ns_per_iter", "pkts_per_sec", "speedup_vs_baseline",
            "cache_hit_rate",
        },
        positive=("ns_per_iter", "pkts_per_sec"),
    )
    require_configs(
        name,
        configs,
        # engine_w8 only exists on multi-core hosts, so it is optional.
        {
            "sequential_batch", "engine_w1_nocache", "engine_w1",
            "zipf_cache_off", "zipf_cache_on",
        },
    )
    by_config = {row["config"]: row for row in rows}
    for config in ("engine_w1", "zipf_cache_on", "engine_w8"):
        row = by_config.get(config)
        if row is None:
            continue
        if not row["cache"]:
            fail(f"{name} {config}: cache flag must be true")
        if not 0.0 < row["cache_hit_rate"] <= 1.0:
            fail(
                f"{name} {config}: cache_hit_rate {row['cache_hit_rate']} "
                "— the cache never hit (did it arm?)"
            )
    for config in ("sequential_batch", "engine_w1_nocache", "zipf_cache_off"):
        if by_config[config]["cache"]:
            fail(f"{name} {config}: cache flag must be false")


def validate_fabric(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "leaves", "workers", "host_cores", "packets_per_iter",
            "epochs_per_iter", "ns_per_iter", "pkts_per_sec",
        },
        positive=("ns_per_iter",),
    )
    require_configs(
        name,
        configs,
        {"fabric_l1", "fabric_l2", "fabric_l4", "fabric_epoch"},
    )
    by_config = {row["config"]: row for row in rows}
    for config, leaves in (("fabric_l1", 1), ("fabric_l2", 2), ("fabric_l4", 4)):
        row = by_config[config]
        if row["leaves"] != leaves:
            fail(f"{name} {config}: expected {leaves} leaves, got {row['leaves']}")
        if row["pkts_per_sec"] <= 0:
            fail(f"{name} {config}: non-positive pkts_per_sec")
    if by_config["fabric_epoch"]["epochs_per_iter"] <= 0:
        fail(f"{name} fabric_epoch: no epochs committed")


def validate_failover(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "leaves", "workers", "host_cores", "packets_per_iter",
            "ns_per_iter", "mttr_ns", "detect_ns", "repairs_per_sec",
            "epoch_retries", "degraded_window_packets",
        },
        positive=("ns_per_iter",),
    )
    require_configs(
        name,
        configs,
        {"failover_kill_l2", "failover_kill_l4", "epoch_retry_stall"},
    )
    by_config = {row["config"]: row for row in rows}
    for config in ("failover_kill_l2", "failover_kill_l4"):
        row = by_config[config]
        if row["mttr_ns"] <= 0:
            fail(f"{name} {config}: failover never measured (mttr_ns == 0)")
        if row["detect_ns"] < 0 or row["detect_ns"] > row["mttr_ns"]:
            fail(
                f"{name} {config}: detection latency {row['detect_ns']} "
                f"outside [0, mttr {row['mttr_ns']}]"
            )
    if by_config["epoch_retry_stall"]["epoch_retries"] <= 0:
        fail(f"{name} epoch_retry_stall: the backoff loop never retried")


def validate_daemon(name, rows, args):
    configs = check_rows(
        name,
        rows,
        {
            "config", "clients", "host_cores", "ops_per_iter", "ns_per_iter",
            "mutations_per_sec", "rpc_p50_ns", "rpc_p99_ns", "rpcs_per_sec",
            "coalesce_factor", "epochs",
        },
        positive=("ns_per_iter", "rpc_p50_ns", "rpc_p99_ns", "rpcs_per_sec"),
    )
    require_configs(
        name,
        configs,
        {"rpc_ping", "churn_c1", "churn_c8", "churn_c64"},
    )
    by_config = {row["config"]: row for row in rows}
    for config, clients in (("churn_c1", 1), ("churn_c8", 8), ("churn_c64", 64)):
        row = by_config[config]
        if row["clients"] != clients:
            fail(f"{name} {config}: expected {clients} clients, got {row['clients']}")
        if row["mutations_per_sec"] <= 0:
            fail(f"{name} {config}: non-positive mutations_per_sec")
        if row["epochs"] <= 0:
            fail(f"{name} {config}: no epochs published")
        if row["coalesce_factor"] < 1.0:
            fail(
                f"{name} {config}: coalesce_factor {row['coalesce_factor']} < 1 "
                "— accepted mutations without published epochs?"
            )
        if not row["rpc_p50_ns"] <= row["rpc_p99_ns"]:
            fail(f"{name} {config}: p50 > p99: {row}")


TELEMETRY_STAGES = {"batch", "parse", "match", "mcast"}


def validate_telemetry(name, doc, args):
    if not isinstance(doc, dict):
        fail(f"{name}: expected an object")
    required = {
        "version", "bench", "host_cores", "workers", "packets", "batches",
        "sampled_packets", "sample_interval", "stages", "tables", "spans",
        "overhead",
    }
    missing = required - doc.keys()
    if missing:
        fail(f"{name}: missing fields {sorted(missing)}")
    if doc["version"] != 1:
        fail(f"{name}: unknown snapshot version {doc['version']}")
    if doc["packets"] <= 0 or doc["batches"] <= 0 or doc["sampled_packets"] <= 0:
        fail(f"{name}: empty telemetry (no packets/batches/samples recorded)")

    stages = {s["stage"]: s for s in doc["stages"]}
    if not TELEMETRY_STAGES <= stages.keys():
        fail(f"{name}: missing stages {sorted(TELEMETRY_STAGES - stages.keys())}")
    for sname, s in stages.items():
        for field in ("count", "p50_ns", "p99_ns", "p999_ns", "min_ns", "max_ns", "mean_ns"):
            if field not in s:
                fail(f"{name} stage {sname}: missing {field}")
        if s["count"] <= 0:
            fail(f"{name} stage {sname}: no samples")
        if not s["p50_ns"] <= s["p99_ns"] <= s["p999_ns"] <= s["max_ns"]:
            fail(f"{name} stage {sname}: percentiles not monotone: {s}")

    if not doc["tables"]:
        fail(f"{name}: no per-table counters")
    for t in doc["tables"]:
        if {"table", "hits", "misses"} - t.keys():
            fail(f"{name}: malformed table row {t}")
    if sum(t["hits"] + t["misses"] for t in doc["tables"]) <= 0:
        fail(f"{name}: table counters recorded nothing")

    for s in doc["spans"]:
        if {"span", "count", "total_ns", "min_ns", "max_ns", "mean_ns"} - s.keys():
            fail(f"{name}: malformed span row {s}")

    over = doc["overhead"]
    for field in ("workers", "pkts_per_sec_instrumented",
                  "pkts_per_sec_uninstrumented", "overhead_pct"):
        if field not in over:
            fail(f"{name}: overhead missing {field}")
    if over["pkts_per_sec_uninstrumented"] <= 0 or over["pkts_per_sec_instrumented"] <= 0:
        fail(f"{name}: non-positive A/B throughput")
    if args.max_overhead_pct is not None and over["overhead_pct"] > args.max_overhead_pct:
        fail(
            f"{name}: telemetry overhead {over['overhead_pct']:.2f}% exceeds "
            f"budget {args.max_overhead_pct}% "
            f"(instrumented {over['pkts_per_sec_instrumented']:.0f} pps vs "
            f"uninstrumented {over['pkts_per_sec_uninstrumented']:.0f} pps)"
        )
    print(
        f"  telemetry overhead: {over['overhead_pct']:.2f}% at "
        f"w{over['workers']}"
    )


VALIDATORS = {
    "BENCH_engine.json": validate_engine,
    "BENCH_hotpath.json": validate_hotpath,
    "BENCH_churn.json": validate_churn,
    "BENCH_faults.json": validate_faults,
    "BENCH_fabric.json": validate_fabric,
    "BENCH_failover.json": validate_failover,
    "BENCH_daemon.json": validate_daemon,
    "BENCH_compile.json": validate_compile,
    "TELEMETRY_engine.json": validate_telemetry,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", help="result files to validate")
    ap.add_argument(
        "--max-overhead-pct", type=float, default=None,
        help="fail if TELEMETRY overhead_pct exceeds this budget",
    )
    ap.add_argument(
        "--ignore-unknown", action="store_true",
        help="skip files with no registered schema instead of failing",
    )
    args = ap.parse_args()

    validated = 0
    for path in args.files:
        base = os.path.basename(path)
        validator = VALIDATORS.get(base)
        if validator is None:
            if args.ignore_unknown:
                continue
            fail(f"{base}: no schema registered (known: {sorted(VALIDATORS)})")
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: {e}")
        print(f"validating {path}")
        validator(base, doc, args)
        n = len(doc) if isinstance(doc, list) else 1
        print(f"  OK ({n} row(s))")
        validated += 1

    if validated == 0:
        fail("no known result files validated")
    print(f"validate_bench: {validated} file(s) OK")


if __name__ == "__main__":
    main()
