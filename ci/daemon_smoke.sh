#!/usr/bin/env bash
# End-to-end smoke test for the camusd service shell, run by the
# daemon-smoke CI job and usable locally:
#
#     ci/daemon_smoke.sh [target-dir]
#
# Starts camusd against the generated ITCH pool with a looping feed
# (so RPCs race a live packet path), drives the control bus with
# camusctl (ping, subscribe, snapshot, typed rejection, unsubscribe,
# stats), scrapes /metrics asserting the known series, then sends
# SIGTERM and requires a clean quiesced exit with a zero-loss ledger.
set -euo pipefail

TARGET="${1:-target/release}"
SOCK="${TMPDIR:-/tmp}/camusd-smoke-$$.sock"
LOG="${TMPDIR:-/tmp}/camusd-smoke-$$.log"
RULE='stock == GOOGL and price > 500 : fwd(7)'

fail() { echo "daemon_smoke: FAIL — $*" >&2; [ -f "$LOG" ] && tail -20 "$LOG" >&2; exit 1; }

[ -x "$TARGET/camusd" ] || cargo build --release -p camusd
[ -x "$TARGET/camusd" ] || fail "no $TARGET/camusd after build"

"$TARGET/camusd" --bus "unix:$SOCK" --metrics 127.0.0.1:0 \
  --subs 32 --workers 2 --feed-packets 4096 --feed-loop >"$LOG" 2>&1 &
PID=$!
cleanup() { kill -9 "$PID" 2>/dev/null || true; rm -f "$SOCK"; }
trap cleanup EXIT

# Wait for both listeners to come up.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && grep -q 'camusd: metrics on' "$LOG" && break
  kill -0 "$PID" 2>/dev/null || fail "camusd died during startup"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "bus socket never appeared"
grep -q "camusd: bus on unix:$SOCK" "$LOG" || fail "bus address not logged"
METRICS=$(sed -n 's#^camusd: metrics on http://\([^/]*\)/metrics$#\1#p' "$LOG")
[ -n "$METRICS" ] || fail "metrics address not logged"
echo "daemon_smoke: camusd pid $PID, bus unix:$SOCK, metrics $METRICS"

ctl() { "$TARGET/camusctl" --bus "unix:$SOCK" "$@"; }

# The RPC walk: ping, mutate, snapshot, typed rejection, stats.
ctl ping | grep -q '^pong$' || fail "ping"
ctl subscribe "$RULE" | grep -q 'generation 1' || fail "subscribe not acked at generation 1"
ctl snapshot | grep -q 'GOOGL' || fail "subscribed rule missing from snapshot"
ctl snapshot | grep -q '# generation 1, 33 rule(s)' || fail "snapshot header wrong"

# A duplicate subscribe must be a *typed* rejection: exit code 3, not
# a transport error, and the daemon must keep serving.
set +e
ctl subscribe "$RULE" 2>/dev/null
RC=$?
set -e
[ "$RC" -eq 3 ] || fail "duplicate subscribe exited $RC, want 3 (typed rejection)"

ctl unsubscribe "$RULE" | grep -q 'generation 2' || fail "unsubscribe not acked at generation 2"
STATS=$(ctl stats)
echo "daemon_smoke: $STATS"
echo "$STATS" | grep -q 'gen=2 rules=32' || fail "stats disagree: $STATS"
echo "$STATS" | grep -q 'epochs=2 mutations=2 rejected=1' || fail "stats counters: $STATS"

# /metrics: the engine families plus the camusd_* ops families, with
# the feed provably flowing (non-zero packet counter).
SCRAPE=$(curl -sf "http://$METRICS/metrics") || fail "metrics scrape"
for series in \
  'camus_packets_total' \
  'camus_span_count_total{span="apply_update"} 2' \
  'camusd_bus_rpcs_total' \
  'camusd_mutations_applied_total 2' \
  'camusd_mutations_rejected_total 1' \
  'camusd_active_subscriptions 32' \
  'camusd_generation 2' \
  'camusd_feed_packets_total'; do
  echo "$SCRAPE" | grep -qF "$series" || fail "missing series: $series"
done
echo "$SCRAPE" | grep -E '^camusd_feed_packets_total [1-9]' >/dev/null \
  || fail "feed never flowed: $(echo "$SCRAPE" | grep camusd_feed_packets_total)"

# SIGTERM → clean quiesce, zero-loss ledger, exit 0.
kill -TERM "$PID"
set +e
wait "$PID"
RC=$?
set -e
[ "$RC" -eq 0 ] || fail "camusd exited $RC after SIGTERM"
grep -q 'camusd: signal received, quiescing' "$LOG" || fail "signal path not taken"
LEDGER=$(grep 'camusd: quiesced' "$LOG") || fail "no final ledger line"
echo "daemon_smoke: $LEDGER"
echo "$LEDGER" | grep -q 'clean=true' || fail "quiesce was not clean"
echo "$LEDGER" | grep -q 'zero_loss=true' || fail "ledger lost packets"
echo "$LEDGER" | grep -q 'quarantined=0' || fail "feed packets were quarantined"

echo "daemon_smoke: OK"
