#!/usr/bin/env python3
"""Throughput regression gate for the quick-mode CI benches.

Compares measured results under results/ against the committed
baselines in results/baselines.json:

    python3 ci/bench_regression.py              # default tolerance
    python3 ci/bench_regression.py --tolerance 50

The check is one-sided: a run fails only when a metric drops below
`baseline * (1 - tolerance_pct/100)`. Faster is always fine — CI
runners vary wildly, so the tolerance is deliberately generous and the
baselines are quick-mode numbers from a small container. A
before/after table is appended to $GITHUB_STEP_SUMMARY when set.

baselines.json schema:

    {
      "tolerance_pct": 35,
      "metrics": [
        {"file": "BENCH_engine.json",
         "select": {"config": "engine_w1"},
         "metric": "pkts_per_sec",
         "baseline": 500000.0},
        ...
      ]
    }
"""

import argparse
import json
import os
import sys

# Multi-core scaling floor: with 8 workers the engine must deliver at
# least this multiple of its single-worker throughput. Only meaningful
# when the host actually has cores to scale onto, so the gate arms
# itself from the host_cores field the bench records.
MIN_SCALING_8W = 3.0


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_regression: {path}: {e}")


def pick_row(rows, select, file, results_dir):
    matches = [
        row for row in rows
        if all(row.get(k) == v for k, v in select.items())
    ]
    if len(matches) != 1:
        sys.exit(
            f"bench_regression: {file}: select {select} matched "
            f"{len(matches)} rows (want exactly 1)"
        )
    return matches[0]


def check_scaling(results_dir, min_scaling, failures):
    """Worker-scaling efficiency gate on BENCH_engine.json.

    Requires engine_w8 >= min_scaling * engine_w1 — but only when the
    measuring host had more than one core. On a 1-core container the
    w8 row measures scheduling overhead, not parallelism, and gating on
    it would institutionalize noise; the skip is reported honestly so a
    green run cannot be mistaken for a verified one.
    """
    path = os.path.join(results_dir, "BENCH_engine.json")
    rows = load(path)
    by_config = {row["config"]: row for row in rows}
    w1, w8 = by_config.get("engine_w1"), by_config.get("engine_w8")
    if w1 is None or w8 is None:
        failures.append("BENCH_engine.json: missing engine_w1/engine_w8 rows")
        return
    host_cores = w8.get("host_cores", 1)
    if host_cores <= 1:
        print(
            f"\nscaling gate: SKIPPED — host had {host_cores} core(s); "
            "an 8-worker row there measures scheduling overhead, not speedup"
        )
        return
    ratio = w8["pkts_per_sec"] / w1["pkts_per_sec"]
    ok = ratio >= min_scaling
    print(
        f"\nscaling gate: engine_w8/engine_w1 = {ratio:.2f}x "
        f"(floor {min_scaling}x, host_cores={host_cores}) "
        f"{'✅' if ok else '❌'}"
    )
    if not ok:
        failures.append(
            f"BENCH_engine.json: engine_w8 scales only {ratio:.2f}x over "
            f"engine_w1 (floor {min_scaling}x at {host_cores} cores)"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baselines", default="results/baselines.json")
    ap.add_argument("--results-dir", default="results")
    ap.add_argument(
        "--tolerance", type=float, default=None,
        help="override tolerance_pct from baselines.json",
    )
    ap.add_argument(
        "--min-scaling", type=float, default=MIN_SCALING_8W,
        help="engine_w8/engine_w1 throughput floor (multi-core hosts only)",
    )
    args = ap.parse_args()

    spec = load(args.baselines)
    tolerance = args.tolerance if args.tolerance is not None else spec["tolerance_pct"]
    floor_frac = 1.0 - tolerance / 100.0

    lines = [
        "| file | selection | metric | baseline | measured | change | floor | status |",
        "|---|---|---|---:|---:|---:|---:|---|",
    ]
    failures = []
    cache = {}
    for m in spec["metrics"]:
        file, select, metric = m["file"], m["select"], m["metric"]
        baseline = float(m["baseline"])
        if file not in cache:
            cache[file] = load(os.path.join(args.results_dir, file))
        row = pick_row(cache[file], select, file, args.results_dir)
        measured = float(row[metric])
        floor = baseline * floor_frac
        ok = measured >= floor
        change = (measured / baseline - 1.0) * 100.0
        status = "✅" if ok else "❌ regression"
        sel = ", ".join(f"{k}={v}" for k, v in select.items())
        lines.append(
            f"| {file} | {sel} | {metric} | {baseline:,.0f} | {measured:,.0f} "
            f"| {change:+.1f}% | {floor:,.0f} | {status} |"
        )
        if not ok:
            failures.append(
                f"{file} [{sel}] {metric}: {measured:,.0f} < floor {floor:,.0f} "
                f"(baseline {baseline:,.0f}, tolerance {tolerance}%)"
            )

    table = "\n".join(lines)
    print(f"tolerance: -{tolerance}% (one-sided)\n")
    print(table)

    check_scaling(args.results_dir, args.min_scaling, failures)

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write("## Bench regression gate\n\n")
            f.write(f"Tolerance: −{tolerance}% (one-sided lower bound)\n\n")
            f.write(table + "\n")

    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_regression: {len(spec['metrics'])} metric(s) within tolerance")


if __name__ == "__main__":
    main()
