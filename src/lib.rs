//! # Camus — packet subscriptions for programmable ASICs
//!
//! A full Rust implementation of *Packet Subscriptions for Programmable
//! ASICs* (Jepsen et al., HotNets 2018): a compiler that turns
//! content-based, stateful **packet subscriptions** —
//!
//! ```text
//! stock == GOOGL ∧ avg(price) > 50 : fwd(1)
//! ```
//!
//! — into a switch data plane: a parser, a chain of per-field
//! match-action tables computed from a multi-terminal BDD over the
//! rules, multicast groups, and register-backed window state; plus the
//! substrates needed to run and evaluate it end to end.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`lang`] | `camus-lang` | subscription language, annotated header specs |
//! | [`bdd`] | `camus-bdd` | multi-terminal BDD with the paper's reductions |
//! | [`compiler`] | `camus-core` | static + dynamic compilation (Algorithm 1), P4 output |
//! | [`pipeline`] | `camus-pipeline` | RMT-style ASIC substrate (parser, tables, TCAM/SRAM model) |
//! | [`itch`] | `camus-itch` | Ethernet/IPv4/UDP/MoldUDP64/ITCH wire formats |
//! | [`workload`] | `camus-workload` | Siena-style generators, ITCH subscriptions, feed synthesis |
//! | [`netsim`] | `camus-netsim` | discrete-event simulation of the Figure 7 experiments |
//! | [`engine`] | `camus-engine` | multi-core sharded forwarding engine (batched, allocation-free replay) |
//! | [`fabric`] | `camus-fabric` | spine/leaf fabric: partitioned slices, two-phase epoch commit |
//! | [`telemetry`] | `camus-telemetry` | lock-free counters/histograms, control-plane spans, Prometheus renderer |
//! | [`bus`] | `camus-bus` | the control-bus wire protocol (framing, typed RPCs) and client |
//! | [`daemon`] | `camusd` | the long-running service shell: bus server, batched epochs, live `/metrics` |
//!
//! ## Quickstart
//!
//! ```
//! use camus::compiler::{Compiler, CompilerOptions};
//! use camus::lang::{parse_program, parse_spec};
//!
//! // 1. The application's message format (paper Fig. 2).
//! let spec = parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
//!
//! // 2. Subscriptions (paper Fig. 1 syntax; ∧ or `and` both work).
//! let rules = parse_program(
//!     "stock == GOOGL : fwd(1)\n\
//!      stock == MSFT and price > 1000 : fwd(2,3)",
//! )
//! .unwrap();
//!
//! // 3. Compile to a switch program and execute it on a packet.
//! let compiler = Compiler::new(spec, CompilerOptions::raw()).unwrap();
//! let program = compiler.compile(&rules).unwrap();
//! let mut pipeline = program.pipeline;
//!
//! let msg = camus::itch::itch::AddOrder::new("GOOGL", camus::itch::itch::Side::Buy, 100, 500);
//! let decision = pipeline.process(&msg.encode(), 0).unwrap();
//! assert_eq!(decision.ports, vec![camus::pipeline::PortId(1)]);
//! ```
//!
//! See `examples/` for complete scenarios: the ITCH pub/sub case study,
//! identifier-based routing, an L4 load balancer, and stateful
//! filtering; and `camus-bench`'s `figures` binary for the paper's
//! evaluation.

pub use camus_bdd as bdd;
pub use camus_bus as bus;
pub use camus_core as compiler;
pub use camus_engine as engine;
pub use camus_fabric as fabric;
pub use camus_itch as itch;
pub use camus_lang as lang;
pub use camus_netsim as netsim;
pub use camus_pipeline as pipeline;
pub use camus_telemetry as telemetry;
pub use camus_workload as workload;
pub use camusd as daemon;
