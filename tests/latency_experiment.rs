//! Integration of workload synthesis, the compiled pipeline and the
//! network simulator: the Figure 7 ordering (switch filtering beats
//! host filtering under bursts) must hold end to end, at test-sized
//! traces.

use camus::compiler::{Compiler, CompilerOptions};
use camus::lang::{parse_program, parse_spec};
use camus::netsim::{run_experiment, ExperimentConfig, FilterMode};
use camus::workload::{synthesize_feed, TraceConfig};

fn camus_pipeline() -> camus::pipeline::Pipeline {
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    compiler
        .compile(&parse_program("stock == GOOGL : fwd(1)").unwrap())
        .unwrap()
        .pipeline
}

#[test]
fn switch_filtering_beats_baseline_tail_latency() {
    let trace = synthesize_feed(&TraceConfig::nasdaq_like(80_000));
    let cfg = ExperimentConfig::default();

    let baseline = run_experiment(&trace, FilterMode::Baseline, &cfg);
    let camus = run_experiment(&trace, FilterMode::Switch(Box::new(camus_pipeline())), &cfg);

    // Both deliver every target message at this load.
    assert_eq!(baseline.target_messages_lost, 0);
    assert_eq!(camus.target_messages_lost, 0);
    assert_eq!(baseline.stats.len(), baseline.target_messages);
    assert_eq!(camus.stats.len(), camus.target_messages);

    // The tail gap is the paper's claim: ≥ 5× at p99.
    let b99 = baseline.stats.percentile(0.99);
    let c99 = camus.stats.percentile(0.99);
    assert!(b99 > 5 * c99, "baseline p99 {b99}ns vs camus p99 {c99}ns");
    assert!(
        camus.stats.max() < 50_000,
        "camus max {}ns",
        camus.stats.max()
    );
}

#[test]
fn camus_host_receives_only_target_traffic() {
    let trace = synthesize_feed(&TraceConfig::synthetic(30_000));
    let cfg = ExperimentConfig::default();
    let camus = run_experiment(&trace, FilterMode::Switch(Box::new(camus_pipeline())), &cfg);
    let targets: usize = trace.iter().filter(|p| p.target_messages > 0).count();
    assert_eq!(camus.packets_to_subscriber, targets);
    // ~5% of the feed.
    let frac = camus.packets_to_subscriber as f64 / trace.len() as f64;
    assert!((frac - 0.05).abs() < 0.01, "{frac}");
}

#[test]
fn baseline_receives_everything() {
    let trace = synthesize_feed(&TraceConfig::synthetic(10_000));
    let cfg = ExperimentConfig::default();
    let r = run_experiment(&trace, FilterMode::Baseline, &cfg);
    assert_eq!(
        r.packets_to_subscriber + r.drops_switch + r.drops_host,
        trace.len()
    );
}

#[test]
fn smooth_traffic_sees_no_queueing_in_either_mode() {
    let mut cfg_trace = TraceConfig::synthetic(5_000);
    cfg_trace.burst_multiplier = 1.0;
    cfg_trace.rate_msgs_per_sec = 100_000.0; // well under host capacity
    let trace = synthesize_feed(&cfg_trace);
    let cfg = ExperimentConfig::default();
    for mode in [
        FilterMode::Baseline,
        FilterMode::Switch(Box::new(camus_pipeline())),
    ] {
        let r = run_experiment(&trace, mode, &cfg);
        assert!(
            r.stats.max() < 10_000,
            "uncongested max {}ns",
            r.stats.max()
        );
        assert_eq!(r.drops_switch + r.drops_host, 0);
    }
}

#[test]
fn results_are_deterministic() {
    let trace = synthesize_feed(&TraceConfig::nasdaq_like(10_000));
    let cfg = ExperimentConfig::default();
    let a = run_experiment(&trace, FilterMode::Baseline, &cfg);
    let b = run_experiment(&trace, FilterMode::Baseline, &cfg);
    assert_eq!(a.stats.latencies_ns, b.stats.latencies_ns);
}
