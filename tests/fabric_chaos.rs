//! The fabric survivability proof-by-test: a seeded chaos schedule
//! (leaf kills, transient whole-leaf stalls, spine partitions —
//! `camus_workload::ChaosPlan`) runs against continuous traffic on the
//! 2/4-leaf × 1/2/8-worker grid, and after every scripted disaster the
//! fabric must converge via an emergency failover epoch with:
//!
//! * **an exact global ledger** — every submitted packet is decided,
//!   quarantined (died inside a leaf), or orphaned (drop-counted at
//!   the spine for a dead owner): `submitted == decided + quarantined
//!   + orphaned`, per leaf and fabric-wide;
//! * **loss confined to the failure** — shards whose owner stayed
//!   healthy lose *nothing* (the subset partition plan keeps
//!   survivors' symbols in place, so their packets never detour
//!   through the blast radius);
//! * **post-failover equivalence** — once the emergency epoch commits,
//!   forwarding is bit-identical to a fresh big-switch recompile of
//!   the same rules over the surviving shards.

use camus::compiler::{owner_of, Compiler, CompilerOptions};
use camus::engine::EngineConfig;
use camus::fabric::{EpochOptions, Fabric, FabricConfig, LeafHealth};
use camus::pipeline::{ForwardDecision, Pipeline};
use camus::workload::{
    naive_ports_for_event, raw_field_extractor, ChaosConfig, ChaosPlan, SienaConfig,
};

fn ports_of(d: &ForwardDecision) -> Vec<u16> {
    d.ports.iter().map(|p| p.0).collect()
}

fn decision_ports(pipe: &mut Pipeline, ev: &[u8]) -> Vec<u16> {
    pipe.process(ev, 0)
        .expect("event parses")
        .ports
        .iter()
        .map(|p| p.0)
        .collect()
}

/// One seeded chaos soak on a `leaves`-wide fabric with `workers`
/// workers per leaf. Rules are static (epochs here are *emergency*
/// epochs, not churn), so the oracle for every packet is the same
/// naive AST evaluation throughout.
fn run_chaos_soak(seed: u64, leaves: usize, workers: usize) {
    let siena = SienaConfig {
        int_attributes: 2,
        symbol_attributes: 1,
        symbol_alphabet: 12,
        int_range: 60,
        predicates_per_subscription: 2,
        subscriptions: 10,
        seed,
        ..Default::default()
    };
    let wl = siena.generate();
    let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).expect("spec compiles");
    let master = compiler.compile(&wl.rules).expect("rules compile").pipeline;
    let extract = raw_field_extractor(&wl.spec, "sym0").expect("shard field exists");

    // ~400-packet trace: chaos triggers land in the middle 80 %, so
    // at least ~40 healthy-side packets (5+ probe ticks) follow the
    // last disaster — enough for detection + failover to converge
    // deterministically before the run ends.
    let events = siena.generate_events(&wl, 400);
    let trace_len = events.len();
    let chaos = ChaosPlan::generate(
        trace_len,
        &ChaosConfig {
            seed: seed ^ 0xDEAD,
            leaves,
            kills: 1,
            stalls: 1,
            stall_ms: 30,
            partitions: 1, // budget-capped: only fires when leaves > 2
        },
    );
    assert!(
        !chaos.events.is_empty(),
        "a multi-leaf soak always scripts at least the kill"
    );

    let ecfg = EngineConfig {
        workers,
        batch_packets: 3,
        watchdog_ms: 20,
        record_decisions: true,
        telemetry: true,
        ..EngineConfig::default()
    };
    let mut fcfg = FabricConfig::uniform(leaves, "ev.sym0", extract.clone(), ecfg);
    fcfg.probe_interval = 8;
    fcfg.epoch = EpochOptions {
        retry_attempts: 50,
        retry_base_ms: 5,
        retry_cap_ms: 40,
    };
    fcfg.chaos = chaos;
    let mut fabric = Fabric::start(&master, &fcfg).expect("fabric starts");

    let mut expected: Vec<Vec<u16>> = Vec::new();
    let mut primary_owner: Vec<usize> = Vec::new();
    for ev in &events {
        expected.push(naive_ports_for_event(&wl.spec, &wl.rules, ev));
        primary_owner.push(owner_of(extract(ev), leaves));
        fabric.submit(ev, 0);
    }

    // Convergence: the scripted fatalities were detected and repaired
    // *during* the run — the fabric ends healthy, not degraded.
    assert!(
        !fabric.degraded(),
        "seed {seed} {leaves}x{workers}: failover did not converge in-run"
    );
    assert!(
        !fabric.failovers().is_empty(),
        "seed {seed} {leaves}x{workers}: the scripted kill never caused a failover"
    );
    for f in fabric.failovers() {
        assert!(f.mttr_ns > 0, "repair time is measured");
    }

    // Post-failover round: every packet must be decided, bit-identical
    // to a fresh big-switch recompile of the same rules.
    let tail_start = events.len();
    let mut fresh = compiler
        .compile(&wl.rules)
        .expect("fresh recompile")
        .pipeline;
    let fresh_expected: Vec<Vec<u16>> = events
        .iter()
        .map(|e| decision_ports(&mut fresh, e))
        .collect();
    for ev in &events {
        fabric.submit(ev, 0);
    }

    let dead: Vec<usize> = (0..leaves)
        .filter(|&l| fabric.leaf_health(l) != LeafHealth::Healthy)
        .collect();
    let report = fabric.finish();

    // The exact global ledger, fabric-wide and per leaf.
    assert!(
        report.reconciles(),
        "seed {seed} {leaves}x{workers}: submitted != decided + quarantined + orphaned"
    );
    assert_eq!(report.robustness.leaf_deaths, dead.len() as u64);
    assert!(report.robustness.failover_epochs >= 1);

    // Loss confinement: orphans and quarantines only on dead leaves.
    for l in 0..leaves {
        if dead.contains(&l) {
            continue;
        }
        assert_eq!(
            report.orphaned_per_leaf[l], 0,
            "seed {seed} {leaves}x{workers}: healthy leaf {l} orphaned packets"
        );
        assert!(
            report.leaves[l].quarantined.is_empty(),
            "seed {seed} {leaves}x{workers}: healthy leaf {l} quarantined packets"
        );
    }

    let decisions = report.decisions_in_submit_order();
    assert_eq!(decisions.len(), 2 * events.len());
    for (i, d) in decisions.iter().enumerate() {
        let ev_idx = i % events.len();
        match d {
            // Whatever was decided matches the oracle — packets go
            // missing (counted), never wrong.
            Some(d) => assert_eq!(
                &ports_of(d),
                &expected[ev_idx],
                "seed {seed} {leaves}x{workers} packet {i}: decision diverged from oracle"
            ),
            // Whatever is missing was owned by a dead leaf: shards
            // that never left a healthy leaf lose nothing.
            None => assert!(
                dead.contains(&primary_owner[ev_idx]),
                "seed {seed} {leaves}x{workers} packet {i}: lost despite a healthy owner"
            ),
        }
    }
    // The entire post-failover tail is present and equals the fresh
    // big-switch recompile over the surviving shards.
    for (i, want) in fresh_expected.iter().enumerate() {
        let d = decisions[tail_start + i].unwrap_or_else(|| {
            panic!("seed {seed} {leaves}x{workers}: post-failover packet {i} lost")
        });
        assert_eq!(
            &ports_of(d),
            want,
            "post-failover packet {i} vs fresh recompile"
        );
    }

    // The spine node exports the robustness counters.
    let prom = report.render_prometheus().expect("telemetry was on");
    assert!(prom.contains(r#"camus_leaf_deaths_total{node="spine"}"#));
    assert!(prom.contains(r#"camus_failover_epochs_total{node="spine"}"#));
}

#[test]
fn seeded_chaos_soak_across_the_fabric_grid() {
    // 2/4 leaves × 1/2/8 workers. PR CI runs one seeded schedule per
    // cell; the nightly workflow widens coverage by exporting
    // `CAMUS_SOAK_SEEDS` (every listed seed runs on every cell).
    let grid = [(2usize, 1usize), (2, 2), (2, 8), (4, 1), (4, 2), (4, 8)];
    let default_seeds: Vec<u64> = (0..grid.len() as u64).map(|i| 100 + i).collect();
    let seeds = camus::workload::soak_seeds(&default_seeds);
    if seeds == default_seeds {
        // Default: one seed per cell, exactly the historical pairing.
        for (seed, (leaves, workers)) in seeds.into_iter().zip(grid) {
            run_chaos_soak(seed, leaves, workers);
        }
    } else {
        for &seed in &seeds {
            for (leaves, workers) in grid {
                run_chaos_soak(seed, leaves, workers);
            }
        }
    }
}

#[test]
fn stall_then_kill_interleaving_does_not_confuse_the_detector() {
    // A transient stall is NOT a death: the detector must ride out the
    // stall (retry/backoff at the epoch barrier) and only declare the
    // scripted kill. A 4-leaf fabric with a stall on one leaf and a
    // kill on another exercises both paths in one run.
    let siena = SienaConfig {
        int_attributes: 1,
        symbol_attributes: 1,
        symbol_alphabet: 8,
        int_range: 40,
        predicates_per_subscription: 2,
        subscriptions: 8,
        seed: 7,
        ..Default::default()
    };
    let wl = siena.generate();
    let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).unwrap();
    let master = compiler.compile(&wl.rules).unwrap().pipeline;
    let extract = raw_field_extractor(&wl.spec, "sym0").unwrap();
    let events = siena.generate_events(&wl, 200);

    let ecfg = EngineConfig {
        workers: 2,
        batch_packets: 3,
        watchdog_ms: 20,
        record_decisions: true,
        ..EngineConfig::default()
    };
    let mut fcfg = FabricConfig::uniform(4, "ev.sym0", extract, ecfg);
    fcfg.probe_interval = 8;
    fcfg.epoch = EpochOptions {
        retry_attempts: 50,
        retry_base_ms: 5,
        retry_cap_ms: 40,
    };
    let mut fabric = Fabric::start(&master, &fcfg).unwrap();

    for (i, ev) in events.iter().enumerate() {
        if i == 40 {
            fabric.stall_leaf(1, 60); // transient: must NOT be declared dead
        }
        if i == 80 {
            fabric.kill_leaf(2); // fatal: must fail over
        }
        fabric.submit(ev, 0);
    }
    assert!(!fabric.degraded());
    assert_eq!(
        fabric.leaf_health(1),
        LeafHealth::Healthy,
        "a stall is not a death"
    );
    assert_eq!(
        fabric.leaf_health(2),
        LeafHealth::Evicted,
        "the kill was repaired"
    );
    assert_eq!(fabric.robustness().leaf_deaths, 1);

    let report = fabric.finish();
    assert!(report.reconciles());
    assert_eq!(report.orphaned_per_leaf[1], 0);
    assert!(report.leaves[1].quarantined.is_empty());
}
