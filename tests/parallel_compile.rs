//! Sharded-compile determinism: the compiler must produce **bit-identical**
//! output at any worker count. The build partitions rules into logical
//! shards and merges along a DAG that is a function of the pool size
//! alone; `compile_shards` only picks how many threads execute it. This
//! is the guardrail that the DAG really is pinned (and that canonical
//! renumbering erases allocation history): every table entry, multicast
//! group and statistic of a K-worker compile is compared against the
//! sequential (K=1) compile, and the K>1 output is additionally checked
//! against the naive AST interpreter.

use camus::compiler::{Compiler, CompilerOptions};
use camus::lang::ast::Rule;
use camus::lang::spec::Spec;
use camus::pipeline::multicast::GroupId;
use camus::workload::{
    generate_itch_subscriptions, naive_ports_for_event, ItchSubsConfig, SienaConfig,
};

fn compile_with_shards(
    spec: &Spec,
    rules: &[Rule],
    shards: usize,
    compress_bits: Option<u32>,
) -> camus::compiler::CompiledProgram {
    let opts = CompilerOptions {
        compile_shards: shards,
        compress_bits,
        ..CompilerOptions::raw()
    };
    Compiler::new(spec.clone(), opts)
        .expect("spec compiles")
        .compile(rules)
        .expect("rules compile")
}

/// Asserts two compiled programs are bit-identical in everything the
/// control plane would install: tables (names, keys, every entry in
/// order), multicast groups, rendered control-plane rules, and the
/// schedule-independent statistics.
fn assert_identical(a: &camus::compiler::CompiledProgram, b: &camus::compiler::CompiledProgram) {
    assert_eq!(a.pipeline.tables.len(), b.pipeline.tables.len());
    for (ta, tb) in a.pipeline.tables.iter().zip(&b.pipeline.tables) {
        assert_eq!(ta.name, tb.name);
        assert_eq!(ta.keys, tb.keys, "keys of {}", ta.name);
        assert_eq!(ta.default_ops, tb.default_ops, "defaults of {}", ta.name);
        assert_eq!(ta.len(), tb.len(), "entry count of {}", ta.name);
        for (i, (ea, eb)) in ta.entries().zip(tb.entries()).enumerate() {
            assert_eq!(ea, eb, "entry {i} of {}", ta.name);
        }
    }
    assert_eq!(a.pipeline.mcast.len(), b.pipeline.mcast.len());
    for g in 0..a.pipeline.mcast.len() as u32 {
        assert_eq!(
            a.pipeline.mcast.ports(GroupId(g)),
            b.pipeline.mcast.ports(GroupId(g)),
            "multicast group {g}"
        );
    }
    assert_eq!(a.control_plane, b.control_plane);

    // Statistics, minus the fields that record the schedule itself
    // (shards, memo counters, pre-canonical allocation).
    assert_eq!(a.stats.conjunctions, b.stats.conjunctions);
    assert_eq!(a.stats.unsat_conjunctions, b.stats.unsat_conjunctions);
    assert_eq!(a.stats.bdd_nodes, b.stats.bdd_nodes);
    assert_eq!(a.stats.bdd_terminals, b.stats.bdd_terminals);
    assert_eq!(a.stats.table_entries, b.stats.table_entries);
    assert_eq!(a.stats.total_entries, b.stats.total_entries);
    assert_eq!(a.stats.mcast_groups, b.stats.mcast_groups);
    assert_eq!(a.stats.states, b.stats.states);

    // The canonical BDDs themselves must be structurally equal.
    assert_eq!(a.bdd.root(), b.bdd.root());
    assert_eq!(a.bdd.node_count(), b.bdd.node_count());
    assert_eq!(a.bdd.action_set_count(), b.bdd.action_set_count());
}

#[test]
fn itch_pool_is_bit_identical_across_shard_counts() {
    let spec = camus::lang::parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    let rules = generate_itch_subscriptions(&ItchSubsConfig {
        subscriptions: 1_500,
        ..Default::default()
    });
    let seq = compile_with_shards(&spec, &rules, 1, None);
    assert_eq!(seq.stats.shards, 1);
    for k in [2usize, 8] {
        let par = compile_with_shards(&spec, &rules, k, None);
        assert_eq!(par.stats.shards, k.min(rules.len()).max(1));
        assert_identical(&seq, &par);
    }
}

#[test]
fn itch_pool_with_compression_is_bit_identical() {
    let spec = camus::lang::parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    let rules = generate_itch_subscriptions(&ItchSubsConfig {
        subscriptions: 800,
        seed: 0xBEEF,
        ..Default::default()
    });
    let seq = compile_with_shards(&spec, &rules, 1, Some(10));
    for k in [2usize, 8] {
        assert_identical(&seq, &compile_with_shards(&spec, &rules, k, Some(10)));
    }
}

#[test]
fn siena_pools_are_bit_identical_across_shards_and_seeds() {
    for seed in [3u64, 77, 2024] {
        let cfg = SienaConfig {
            subscriptions: 120,
            seed,
            ..Default::default()
        };
        let w = cfg.generate();
        let seq = compile_with_shards(&w.spec, &w.rules, 1, None);
        for k in [2usize, 8] {
            assert_identical(&seq, &compile_with_shards(&w.spec, &w.rules, k, None));
        }
    }
}

#[test]
fn sharded_compile_agrees_with_naive_interpreter() {
    let cfg = SienaConfig {
        subscriptions: 60,
        seed: 5150,
        ..Default::default()
    };
    let w = cfg.generate();
    let prog = compile_with_shards(&w.spec, &w.rules, 8, None);
    assert!(prog.bdd.validate().is_ok());
    let mut pipe = prog.pipeline;
    for ev in cfg.generate_events(&w, 250) {
        let d = pipe.process(&ev, 0).expect("event parses");
        let got: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        let want = naive_ports_for_event(&w.spec, &w.rules, &ev);
        assert_eq!(got, want, "event {ev:x?}");
    }
}

#[test]
fn degenerate_pools_compile_at_any_shard_count() {
    let spec = camus::lang::parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    // Empty rule set.
    let seq = compile_with_shards(&spec, &[], 1, None);
    for k in [2usize, 8] {
        assert_identical(&seq, &compile_with_shards(&spec, &[], k, None));
    }
    // Fewer rules than shards.
    let rules = generate_itch_subscriptions(&ItchSubsConfig {
        subscriptions: 3,
        ..Default::default()
    });
    let seq = compile_with_shards(&spec, &rules, 1, None);
    for k in [2usize, 8] {
        assert_identical(&seq, &compile_with_shards(&spec, &rules, k, None));
    }
}
