//! Cross-crate integration: language → compiler → pipeline → wire
//! formats, on the full market-data encapsulation.

use camus::compiler::{Compiler, CompilerOptions};
use camus::itch::itch::{AddOrder, ItchMessage, Side};
use camus::itch::{build_feed_packet, FeedConfig};
use camus::lang::{parse_program, parse_spec};
use camus::pipeline::PortId;

fn compiled(rules: &str) -> camus::compiler::CompiledProgram {
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    compiler.compile(&parse_program(rules).unwrap()).unwrap()
}

fn feed(msgs: &[ItchMessage]) -> Vec<u8> {
    build_feed_packet(&FeedConfig::default(), 1, msgs)
}

#[test]
fn mold_feed_is_filtered_per_message() {
    let prog = compiled("stock == GOOGL : fwd(1)\nstock == MSFT : fwd(2)");
    let mut pipe = prog.pipeline;

    let pkt = feed(&[
        ItchMessage::AddOrder(AddOrder::new("GOOGL", Side::Buy, 100, 10)),
        ItchMessage::AddOrder(AddOrder::new("ORCL", Side::Buy, 100, 10)),
        ItchMessage::AddOrder(AddOrder::new("MSFT", Side::Sell, 100, 10)),
        ItchMessage::OrderDelete { order_ref: 7 }, // skipped by the parser
    ]);
    let d = pipe.process(&pkt, 0).unwrap();
    assert_eq!(d.ports, vec![PortId(1), PortId(2)]);
    assert_eq!(d.messages, 3, "delete messages are not add-orders");
    assert_eq!(d.matched_messages, 2);
}

#[test]
fn packet_with_only_noise_is_dropped() {
    let prog = compiled("stock == GOOGL : fwd(1)");
    let mut pipe = prog.pipeline;
    let pkt = feed(&[
        ItchMessage::OrderDelete { order_ref: 1 },
        ItchMessage::OrderCancel {
            order_ref: 2,
            shares: 5,
        },
    ]);
    let d = pipe.process(&pkt, 0).unwrap();
    assert!(d.dropped());
    assert_eq!(d.messages, 0);
}

#[test]
fn empty_feed_packet_is_dropped_not_an_error() {
    let prog = compiled("stock == GOOGL : fwd(1)");
    let mut pipe = prog.pipeline;
    let d = pipe.process(&feed(&[]), 0).unwrap();
    assert!(d.dropped());
}

#[test]
fn garbage_bytes_are_typed_drops_not_errors() {
    use camus::pipeline::ParseDrop;
    let prog = compiled("stock == GOOGL : fwd(1)");
    let mut pipe = prog.pipeline;
    // Truncated frame: underflow drop.
    let d = pipe.process(&[0u8; 10], 0).unwrap();
    assert!(d.dropped());
    assert_eq!(d.drop_reason, Some(ParseDrop::Underflow));
    // Non-IPv4 ethertype: no parser transition.
    let mut pkt = feed(&[ItchMessage::AddOrder(AddOrder::new(
        "GOOGL",
        Side::Buy,
        1,
        1,
    ))]);
    pkt[12] = 0x86;
    pkt[13] = 0xdd;
    let d = pipe.process(&pkt, 0).unwrap();
    assert!(d.dropped());
    assert_eq!(d.drop_reason, Some(ParseDrop::NoTransition));
    // Per-reason counters reconcile with the packet count.
    let s = &pipe.exec.stats;
    assert_eq!(s.malformed_packets(), 2);
    assert_eq!(s.packets, s.forwarded_packets + s.dropped_packets);
}

#[test]
fn multicast_merging_matches_paper_semantics() {
    // Figure 3's overlap: both rules match → fwd(1,2) as one group.
    let prog = compiled(
        "shares < 60 and stock == AAPL : fwd(1)\n\
         stock == AAPL : fwd(2)\n\
         shares > 100 and stock == MSFT : fwd(3)",
    );
    let mut pipe = prog.pipeline;
    let d = pipe
        .process(
            &feed(&[ItchMessage::AddOrder(AddOrder::new(
                "AAPL",
                Side::Buy,
                50,
                1,
            ))]),
            0,
        )
        .unwrap();
    assert_eq!(d.ports, vec![PortId(1), PortId(2)]);
    let d = pipe
        .process(
            &feed(&[ItchMessage::AddOrder(AddOrder::new(
                "AAPL",
                Side::Buy,
                80,
                1,
            ))]),
            0,
        )
        .unwrap();
    assert_eq!(d.ports, vec![PortId(2)]);
    let d = pipe
        .process(
            &feed(&[ItchMessage::AddOrder(AddOrder::new(
                "MSFT",
                Side::Buy,
                500,
                1,
            ))]),
            0,
        )
        .unwrap();
    assert_eq!(d.ports, vec![PortId(3)]);
}

#[test]
fn negation_and_disjunction_compile_and_run() {
    let prog = compiled("!(stock == GOOGL) and (price < 10 or price > 1000) : fwd(5)");
    let mut pipe = prog.pipeline;
    let cases = [
        ("MSFT", 5u32, true),
        ("MSFT", 500, false),
        ("MSFT", 2000, true),
        ("GOOGL", 5, false),
    ];
    for (sym, price, hits) in cases {
        let d = pipe
            .process(
                &feed(&[ItchMessage::AddOrder(AddOrder::new(
                    sym,
                    Side::Buy,
                    1,
                    price,
                ))]),
                0,
            )
            .unwrap();
        assert_eq!(!d.dropped(), hits, "{sym} @ {price}");
    }
}

#[test]
fn recompilation_updates_behaviour_without_new_image() {
    // Dynamic compilation step only: same spec, new rules, fresh tables.
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).unwrap();
    let compiler = Compiler::new(spec, CompilerOptions::default()).unwrap();
    let gen1 = compiler
        .compile(&parse_program("stock == GOOGL : fwd(1)").unwrap())
        .unwrap();
    let gen2 = compiler
        .compile(&parse_program("stock == GOOGL : fwd(9)").unwrap())
        .unwrap();
    // The static halves agree (same parser program).
    assert_eq!(gen1.pipeline.parser, gen2.pipeline.parser);

    let pkt = feed(&[ItchMessage::AddOrder(AddOrder::new(
        "GOOGL",
        Side::Buy,
        1,
        1,
    ))]);
    let mut p1 = gen1.pipeline;
    let mut p2 = gen2.pipeline;
    assert_eq!(p1.process(&pkt, 0).unwrap().ports, vec![PortId(1)]);
    assert_eq!(p2.process(&pkt, 0).unwrap().ports, vec![PortId(9)]);
}

#[test]
fn placement_and_artifacts_ship_with_the_program() {
    let prog = compiled("stock == GOOGL and price > 100 : fwd(1)");
    assert!(prog.placement.fits());
    assert!(prog.p4_source.contains("table t_add_order_stock"));
    assert!(prog.control_plane.lines().count() >= prog.stats.total_entries);
    assert!(prog.bdd.validate().is_ok());
    // DOT export for docs/debugging.
    let dot = prog.bdd.to_dot("e2e");
    assert!(dot.contains("digraph"));
}

#[test]
fn netcache_example_routes_on_keys_and_actually_hits_the_decision_cache() {
    // The `netcache_routing` example's program, run through the engine
    // with its decision cache armed on the content identifier. Every
    // rule matches only `req.key`, so the program is cacheable; a
    // skewed trace must produce real cache hits, the hot-key pin must
    // mirror to the cache port, and the generation swap must
    // invalidate stale cached decisions.
    use camus::compiler::IncrementalCompiler;
    use camus::engine::{Engine, EngineConfig};
    use std::sync::Arc;

    let spec = parse_spec(
        "header_type kv_req_t { fields { opcode: 8; key: 64; client: 32; } }\n\
         header kv_req_t req;\n\
         @query_field_exact(req.opcode)\n\
         @query_field(req.key)",
    )
    .unwrap();
    let alphabet = parse_program(
        "key < 1000000 : fwd(10)\n\
         key >= 1000000 : fwd(11)\n\
         key == 42 : fwd(30)",
    )
    .unwrap();
    let mut session = IncrementalCompiler::new(spec, &CompilerOptions::raw(), &alphabet).unwrap();
    let r1 = session
        .install(&parse_program("key < 1000000 : fwd(10)\nkey >= 1000000 : fwd(11)").unwrap())
        .unwrap();

    let packet = |key: u64| {
        let mut b = vec![1u8];
        b.extend_from_slice(&key.to_be_bytes());
        b.extend_from_slice(&0u32.to_be_bytes());
        b
    };
    let cfg = EngineConfig {
        workers: 1,
        batch_packets: 8,
        record_decisions: true,
        decision_cache: Some("req.key".into()),
        ..EngineConfig::default()
    };
    let mut engine = Engine::start(
        &r1.pipeline,
        &cfg,
        Arc::new(|pkt: &[u8]| {
            let mut k = [0u8; 8];
            k.copy_from_slice(&pkt[1..9]);
            u64::from_be_bytes(k)
        }),
    );
    for _ in 0..50 {
        engine.submit(&packet(42), 0);
        engine.submit(&packet(7_000_000), 0);
    }
    engine.quiesce().unwrap();

    // Pin key 42 hot; the swap must invalidate the cached [10].
    let r2 = session
        .install(&parse_program("key == 42 : fwd(30)").unwrap())
        .unwrap();
    engine.apply_update(&r2).unwrap();
    for _ in 0..50 {
        engine.submit(&packet(42), 0);
    }

    let report = engine.finish();
    assert!(report.error.is_none(), "{:?}", report.error);
    assert!(
        report.hotpath.cache_hits > 0,
        "cacheable key-only program must hit: {:?}",
        report.hotpath
    );
    assert_eq!(
        report.hotpath.cache_hits + report.hotpath.cache_misses,
        report.stats.messages,
        "every message consults the cache"
    );
    let ports = |i: usize| -> Vec<u16> { report.decisions[i].ports.iter().map(|p| p.0).collect() };
    assert_eq!(ports(0), vec![10], "gen1: key 42 partition route");
    assert_eq!(ports(1), vec![11], "gen1: cold key partition route");
    for i in 100..150 {
        assert_eq!(
            ports(i),
            vec![10, 30],
            "gen2: pinned key mirrors to cache port"
        );
    }
}
