//! Differential testing of live subscription churn: random update
//! sequences driven through [`IncrementalCompiler::update`], with the
//! deltas replayed onto a running pipeline step by step. After every
//! step the updated pipeline must forward identically to a fresh full
//! `Compiler::compile` of the cumulative rule set — and both must
//! agree with the naive AST interpreter in `camus::workload`, the
//! same oracle the Siena differential tests use.
//!
//! Sequences mix the delta path (pure adds inside the alphabet), the
//! full-rebuild path (removals), and the `NeedsFullRecompile` fallback
//! (out-of-alphabet adds), so every update plane route is covered.

use camus::compiler::{Compiler, CompilerOptions, IncrementalCompiler};
use camus::workload::{naive_ports_for_event, siena_churn, ChurnConfig, SienaConfig};

fn decision_ports(pipe: &mut camus::pipeline::Pipeline, ev: &[u8]) -> Vec<u16> {
    pipe.process(ev, 0)
        .expect("event parses")
        .ports
        .iter()
        .map(|p| p.0)
        .collect()
}

/// Runs one random update sequence and checks the pipeline after every
/// step against a fresh full compile and the interpreter.
fn run_churn_sequence(seed: u64, removes_per_step: usize, out_of_alphabet: usize) {
    let siena = SienaConfig {
        int_attributes: 2,
        symbol_attributes: 1,
        symbol_alphabet: 8,
        int_range: 60, // dense: plenty of overlap and matches
        predicates_per_subscription: 2,
        seed,
        ..Default::default()
    };
    let churn = ChurnConfig {
        initial_rules: 6,
        steps: 4,
        adds_per_step: 2,
        removes_per_step,
        seed: seed ^ 0xFEED,
        ..Default::default()
    };
    let plan = siena_churn(&siena, &churn, out_of_alphabet);
    let spec = plan.base.spec.clone();
    let opts = CompilerOptions::raw();

    let mut session =
        IncrementalCompiler::new(spec.clone(), &opts, &plan.base.rules).expect("alphabet resolves");
    let report = session
        .install(&plan.schedule.initial)
        .expect("initial install");
    // The running pipeline: only ever touched through `apply_to`.
    let mut mirror = report.pipeline.clone();

    let full_compiler = Compiler::new(spec.clone(), opts).expect("spec compiles");
    let events = siena.generate_events(&plan.base, 15);

    for (k, step) in plan.schedule.steps.iter().enumerate() {
        let report = session
            .update(&step.add, &step.remove)
            .expect("update compiles");
        report.apply_to(&mut mirror).expect("update applies");

        let active = plan.schedule.rules_after(k + 1);
        assert_eq!(
            session.active_rules(),
            active.as_slice(),
            "seed {seed} step {k}: session active set drifted from the replay"
        );
        if !step.remove.is_empty() {
            assert!(
                report.full_rebuild,
                "seed {seed} step {k}: removal must force a full rebuild"
            );
        }

        let mut full = full_compiler
            .compile(&active)
            .expect("cumulative set compiles")
            .pipeline;
        for ev in &events {
            let incremental = decision_ports(&mut mirror, ev);
            let fresh = decision_ports(&mut full, ev);
            let oracle = naive_ports_for_event(&spec, &active, ev);
            assert_eq!(
                incremental, fresh,
                "seed {seed} step {k}: incremental vs full compile, event {ev:x?}"
            );
            assert_eq!(
                incremental, oracle,
                "seed {seed} step {k}: incremental vs interpreter, event {ev:x?}"
            );
        }
    }
}

#[test]
fn fifty_random_update_sequences_match_full_recompile() {
    // ≥ 50 sequences; removal pressure cycles so pure-delta, mixed and
    // heavy-rebuild sequences all appear.
    for seed in 0..50u64 {
        run_churn_sequence(seed, (seed % 3) as usize, 0);
    }
}

#[test]
fn out_of_alphabet_adds_round_trip_through_full_recompile() {
    // Adds spliced from outside the session alphabet force the
    // `NeedsFullRecompile` fallback inside `update`; behaviour must
    // still track the full compile exactly.
    for seed in [3u64, 17, 29, 41, 53] {
        run_churn_sequence(seed, 1, 2);
    }
}

#[test]
fn pure_add_sequences_stay_on_the_delta_path() {
    // With no removals and no out-of-alphabet rules every update is a
    // splice; check the reports actually say so.
    let siena = SienaConfig {
        int_attributes: 2,
        symbol_attributes: 1,
        symbol_alphabet: 6,
        int_range: 40,
        predicates_per_subscription: 2,
        seed: 7,
        ..Default::default()
    };
    let churn = ChurnConfig {
        initial_rules: 5,
        steps: 5,
        adds_per_step: 2,
        removes_per_step: 0,
        seed: 0xADD5,
        ..Default::default()
    };
    let plan = siena_churn(&siena, &churn, 0);
    let opts = CompilerOptions::raw();
    let mut session =
        IncrementalCompiler::new(plan.base.spec.clone(), &opts, &plan.base.rules).unwrap();
    let mut mirror = session.install(&plan.schedule.initial).unwrap().pipeline;
    let full_compiler = Compiler::new(plan.base.spec.clone(), opts).unwrap();
    let events = siena.generate_events(&plan.base, 10);

    for (k, step) in plan.schedule.steps.iter().enumerate() {
        let report = session.update(&step.add, &step.remove).unwrap();
        assert!(!report.full_rebuild, "step {k} should be a delta update");
        report.apply_to(&mut mirror).unwrap();

        let active = plan.schedule.rules_after(k + 1);
        let mut full = full_compiler.compile(&active).unwrap().pipeline;
        for ev in &events {
            assert_eq!(
                decision_ports(&mut mirror, ev),
                decision_ports(&mut full, ev),
                "step {k}, event {ev:x?}"
            );
        }
    }
}
