//! The fabric equivalence proof-by-test: one subscription program
//! partitioned across a spine/leaf fabric of engines must forward
//! every packet identically to a single big switch running the whole
//! program — which in turn must agree with the naive AST oracle.
//!
//! Fifty random churn sequences run across the 1/2/4-leaf ×
//! 1/2/8-worker grid, with every update applied as a two-phase fabric
//! epoch while traffic is in flight (partial batches straddle the
//! commit). On top of the clean paths, two adversarial scenarios:
//!
//! * an **admission-rejected epoch** — one leaf's ASIC budget rejects
//!   its new slice; the whole epoch must abort all-or-nothing with
//!   bit-identical pre-state on *every* node;
//! * a **leaf-worker death** — a scripted worker crash mid-trace must
//!   reconcile the zero-loss ledger exactly (every packet decided or
//!   quarantined) while surviving packets stay oracle-identical.

use camus::compiler::partition::PartitionPlan;
use camus::compiler::{Compiler, CompilerOptions, IncrementalCompiler};
use camus::engine::{EngineConfig, EngineFault, FaultInjection};
use camus::fabric::{tables_identical, Fabric, FabricConfig, FabricFault};
use camus::pipeline::{place_chain, AsicModel, ForwardDecision, Pipeline};
use camus::workload::{
    naive_ports_for_event, raw_field_extractor, siena_churn, ChurnConfig, SienaConfig,
};
use std::collections::HashSet;
use std::sync::Arc;

fn siena_cfg(seed: u64) -> SienaConfig {
    SienaConfig {
        int_attributes: 2,
        symbol_attributes: 1,
        symbol_alphabet: 8,
        int_range: 60, // dense: plenty of overlap and matches
        predicates_per_subscription: 2,
        seed,
        ..Default::default()
    }
}

fn ports_of(d: &ForwardDecision) -> Vec<u16> {
    d.ports.iter().map(|p| p.0).collect()
}

fn decision_ports(pipe: &mut Pipeline, ev: &[u8]) -> Vec<u16> {
    pipe.process(ev, 0)
        .expect("event parses")
        .ports
        .iter()
        .map(|p| p.0)
        .collect()
}

/// One random churn sequence on a `leaves`-wide fabric with `workers`
/// workers per leaf. Traffic flows continuously; each update commits
/// as a fabric epoch with partial batches in flight. At the end, the
/// recorded per-packet fabric decisions must equal the oracle decision
/// of the rule set that was live *when each packet was submitted* —
/// which is exactly the no-mixed-epoch guarantee. Each epoch is also
/// triple-checked: fresh big-switch full recompile ≡ naive oracle.
fn run_fabric_churn(seed: u64, leaves: usize, workers: usize) {
    let siena = siena_cfg(seed);
    let churn = ChurnConfig {
        initial_rules: 6,
        steps: 4,
        adds_per_step: 2,
        removes_per_step: (seed % 3) as usize,
        seed: seed ^ 0xFEED,
        ..Default::default()
    };
    let plan = siena_churn(&siena, &churn, 0);
    let spec = plan.base.spec.clone();
    let opts = CompilerOptions::raw();

    let mut session =
        IncrementalCompiler::new(spec.clone(), &opts, &plan.base.rules).expect("alphabet resolves");
    let install = session
        .install(&plan.schedule.initial)
        .expect("initial install");
    let full_compiler = Compiler::new(spec.clone(), opts).expect("spec compiles");

    let extract = raw_field_extractor(&spec, "sym0").expect("shard field exists");
    let ecfg = EngineConfig {
        workers,
        batch_packets: 3, // small batches: epochs land on partial batches
        record_decisions: true,
        ..EngineConfig::default()
    };
    let fcfg = FabricConfig::uniform(leaves, "ev.sym0", extract, ecfg);
    let mut fabric = Fabric::start(&install.pipeline, &fcfg).expect("fabric starts");

    let events = siena.generate_events(&plan.base, 12);
    let mut active = plan.schedule.initial.clone();
    let mut expected: Vec<Vec<u16>> = Vec::new();
    let submit_all = |fabric: &mut Fabric,
                      active: &[camus::lang::Rule],
                      expected: &mut Vec<Vec<u16>>,
                      count: usize| {
        for ev in events.iter().take(count) {
            expected.push(naive_ports_for_event(&spec, active, ev));
            fabric.submit(ev, 0);
        }
    };

    submit_all(&mut fabric, &active, &mut expected, events.len());
    for (k, step) in plan.schedule.steps.iter().enumerate() {
        // Mid-update traffic: these packets are (partially) in flight
        // when the epoch commits, and must complete under OLD rules.
        submit_all(&mut fabric, &active, &mut expected, 5);

        let report = session
            .update(&step.add, &step.remove)
            .expect("update compiles");
        fabric.apply_update(&report).expect("epoch commits");
        active = plan.schedule.rules_after(k + 1);

        // The other two sides of the triangle at this epoch: a fresh
        // big-switch compile of the cumulative set ≡ the AST oracle.
        let mut full = full_compiler
            .compile(&active)
            .expect("cumulative set compiles")
            .pipeline;
        for ev in &events {
            assert_eq!(
                decision_ports(&mut full, ev),
                naive_ports_for_event(&spec, &active, ev),
                "seed {seed} step {k}: full compile vs oracle, event {ev:x?}"
            );
        }

        // Post-epoch traffic must see the NEW rules.
        submit_all(&mut fabric, &active, &mut expected, events.len());
    }

    assert_eq!(fabric.epoch(), plan.schedule.steps.len() as u64);
    let report = fabric.finish();
    assert!(
        report.reconciles(),
        "seed {seed} leaves {leaves} workers {workers}: ledger must reconcile"
    );
    assert_eq!(report.total_quarantined(), 0, "clean run never quarantines");
    let decisions = report.decisions_in_submit_order();
    assert_eq!(decisions.len(), expected.len());
    for (i, want) in expected.iter().enumerate() {
        let got = ports_of(decisions[i].expect("clean run records every decision"));
        assert_eq!(
            &got, want,
            "seed {seed} leaves {leaves} workers {workers} packet {i}: \
             fabric vs submission-epoch oracle"
        );
    }
}

#[test]
fn fifty_random_churn_sequences_across_the_fabric_grid() {
    // ≥ 50 sequences cycling through the full 1/2/4-leaf × 1/2/8-worker
    // grid (seeds 0..8 alone cover every cell once; fifty seeds cover
    // each cell five or six times) with removal pressure also cycling.
    for seed in 0..50u64 {
        let leaves = [1usize, 2, 4][(seed % 3) as usize];
        let workers = [1usize, 2, 8][((seed / 3) % 3) as usize];
        run_fabric_churn(seed, leaves, workers);
    }
}

#[test]
fn admission_rejected_epoch_is_all_or_nothing_across_the_fabric() {
    // Leaf 1 gets an ASIC budget sized to its *current* slice; an
    // update bomb that outgrows that budget must be rejected in the
    // epoch's prepare phase — and the rejection must leave every node
    // (including the leaves that could have fit it) bit-identical to
    // its pre-epoch state, with no generation published anywhere.
    let siena = siena_cfg(5);
    let wl = siena.generate();
    let compiler = Compiler::new(wl.spec.clone(), CompilerOptions::raw()).unwrap();
    let initial: Vec<camus::lang::Rule> = wl.rules.iter().take(6).cloned().collect();
    let master = compiler.compile(&initial).unwrap().pipeline;

    // Size leaf 1's admission model around its seed slice: the
    // smallest power-of-two per-stage budget that fits it. The bomb
    // then has to out-grow the budget, not our guess.
    let plan = PartitionPlan::compute(&master, "ev.sym0", 2).unwrap();
    let seed_slice = plan.slice(&master, 1);
    let mut per_stage = 1usize;
    let tight = loop {
        let candidate = AsicModel {
            stages: 4,
            sram_entries_per_stage: per_stage,
            tcam_entries_per_stage: per_stage,
            ..AsicModel::tofino32()
        };
        if place_chain(&seed_slice.tables, &candidate)
            .failure
            .is_none()
        {
            break candidate;
        }
        per_stage *= 2;
        assert!(per_stage < 1 << 20, "seed slice never fit");
    };

    // The bomb: the same spec, an order of magnitude more rules.
    let big = SienaConfig {
        subscriptions: 400,
        ..siena.clone()
    }
    .generate();
    let bomb = compiler.compile(&big.rules).unwrap().pipeline;
    let bomb_plan = PartitionPlan::compute(&bomb, "ev.sym0", 2).unwrap();
    assert!(
        place_chain(&bomb_plan.slice(&bomb, 1).tables, &tight)
            .failure
            .is_some(),
        "bomb unexpectedly fits leaf 1's budget"
    );

    let extract = raw_field_extractor(&wl.spec, "sym0").unwrap();
    let base = EngineConfig {
        workers: 2,
        batch_packets: 3,
        record_decisions: true,
        ..EngineConfig::default()
    };
    let fcfg = FabricConfig::new(
        "ev.sym0",
        extract,
        vec![
            base.clone(), // leaf 0: default (roomy) tofino32 budget
            EngineConfig {
                admission: Some(tight),
                ..base
            },
        ],
    );
    let mut fabric = Fabric::start(&master, &fcfg).unwrap();

    let events = siena.generate_events(&wl, 20);
    for ev in &events[..10] {
        fabric.submit(ev, 0);
    }

    let before: Vec<Vec<camus::pipeline::Table>> =
        (0..2).map(|l| fabric.leaf_tables(l).to_vec()).collect();
    let gens: Vec<u64> = (0..2).map(|l| fabric.leaf_generation(l)).collect();

    let err = fabric.install_master(bomb);
    match err {
        Err(FabricFault::Prepare {
            leaf: 1,
            fault: EngineFault::Admission(adm),
        }) => assert!(adm.needed > adm.available, "{adm:?}"),
        other => panic!("expected leaf-1 admission rejection, got {other:?}"),
    }
    assert_eq!(fabric.epoch(), 0);
    assert_eq!(fabric.epochs_rejected(), 1);
    for l in 0..2 {
        assert!(
            tables_identical(fabric.leaf_tables(l), &before[l]),
            "leaf {l}: rejected epoch left a table change behind"
        );
        assert_eq!(
            fabric.leaf_generation(l),
            gens[l],
            "leaf {l}: rejected epoch published a generation"
        );
    }

    // Forwarding throughout — including after the rejection — is
    // bit-identical to the original program on the big switch.
    for ev in &events[10..] {
        fabric.submit(ev, 0);
    }
    let report = fabric.finish();
    assert!(report.reconciles());
    for r in &report.leaves {
        assert_eq!(r.updates.published, 0, "a leaf published the dead epoch");
    }
    assert_eq!(report.leaves[1].faults.updates_rejected, 1);
    let mut oracle = master.clone();
    let decisions = report.decisions_in_submit_order();
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(
            ports_of(decisions[i].unwrap()),
            decision_ports(&mut oracle, ev),
            "packet {i} diverged from the pre-epoch program"
        );
    }
}

#[test]
fn leaf_worker_death_reconciles_with_zero_loss() {
    // A scripted worker crash on one leaf mid-trace, followed by a
    // fabric epoch: the dead batch is quarantined (exact seqs), the
    // worker respawns at the epoch's quiesce barrier, the epoch still
    // commits fabric-wide, and every surviving packet is decided under
    // the rule set of its submission epoch.
    let seed = 23u64;
    let siena = siena_cfg(seed);
    let churn = ChurnConfig {
        initial_rules: 6,
        steps: 1,
        adds_per_step: 2,
        removes_per_step: 0,
        seed: seed ^ 0xFEED,
        ..Default::default()
    };
    let plan = siena_churn(&siena, &churn, 0);
    let spec = plan.base.spec.clone();
    let opts = CompilerOptions::raw();
    let mut session = IncrementalCompiler::new(spec.clone(), &opts, &plan.base.rules).unwrap();
    let install = session.install(&plan.schedule.initial).unwrap();

    let extract = raw_field_extractor(&spec, "sym0").unwrap();
    let base = EngineConfig {
        workers: 2,
        batch_packets: 2,
        record_decisions: true,
        ..EngineConfig::default()
    };
    let fcfg = FabricConfig::new(
        "ev.sym0",
        extract,
        vec![
            base.clone(),
            EngineConfig {
                faults: FaultInjection {
                    // Leaf-local seq 0: leaf 1's first packet takes its
                    // whole batch (and worker) down.
                    die_seqs: Arc::new(HashSet::from([0u64])),
                    ..FaultInjection::default()
                },
                ..base
            },
        ],
    );
    let mut fabric = Fabric::start(&install.pipeline, &fcfg).unwrap();

    let events = siena.generate_events(&plan.base, 24);
    let mut active = plan.schedule.initial.clone();
    let mut expected: Vec<Vec<u16>> = Vec::new();
    for ev in &events {
        expected.push(naive_ports_for_event(&spec, &active, ev));
        fabric.submit(ev, 0);
    }
    assert!(
        fabric.submitted() > 0 && fabric.route(&events[0]) < 2,
        "sanity"
    );

    // The epoch's quiesce barrier is where the death is detected and
    // healed; the commit must still land.
    let step = &plan.schedule.steps[0];
    let report = session.update(&step.add, &step.remove).unwrap();
    fabric
        .apply_update(&report)
        .expect("epoch commits despite the death");
    active = plan.schedule.rules_after(1);
    for ev in &events {
        expected.push(naive_ports_for_event(&spec, &active, ev));
        fabric.submit(ev, 0);
    }

    let report = fabric.finish();
    assert!(report.reconciles(), "zero-loss ledger must reconcile");
    assert!(
        report.total_quarantined() >= 1,
        "the dead batch is quarantined"
    );
    assert!(report.leaves[1].faults.worker_deaths >= 1);
    assert!(report.leaves[1].faults.respawns >= 1);
    assert_eq!(report.epoch, 1);

    let decisions = report.decisions_in_submit_order();
    assert_eq!(decisions.len(), expected.len());
    let mut quarantined_seen = 0usize;
    for (i, want) in expected.iter().enumerate() {
        match decisions[i] {
            Some(d) => assert_eq!(
                &ports_of(d),
                want,
                "packet {i} diverged from its submission-epoch oracle"
            ),
            None => quarantined_seen += 1,
        }
    }
    assert_eq!(quarantined_seen, report.total_quarantined());
    // Post-epoch packets are never quarantined (death healed earlier).
    for d in &decisions[events.len()..] {
        assert!(d.is_some());
    }
}
