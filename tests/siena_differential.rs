//! Differential testing over generated workloads: for Siena-style
//! subscription sets, the compiled pipeline must forward each event to
//! exactly the union of the ports of the matching subscriptions —
//! checked against the direct AST interpreter in `camus::workload`
//! (shared with the churn differential tests), across seeds and
//! predicate counts.

use camus::compiler::{Compiler, CompilerOptions};
use camus::workload::{naive_ports_for_event, SienaConfig};

fn run_differential(cfg: SienaConfig, events: usize) {
    let w = cfg.generate();
    let compiler =
        Compiler::new(w.spec.clone(), CompilerOptions::raw()).expect("siena spec compiles");
    let prog = compiler.compile(&w.rules).expect("siena rules compile");
    assert!(prog.bdd.validate().is_ok());
    let mut pipe = prog.pipeline;

    for ev in cfg.generate_events(&w, events) {
        let d = pipe.process(&ev, 0).expect("event parses");
        let got: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        let want = naive_ports_for_event(&w.spec, &w.rules, &ev);
        assert_eq!(got, want, "event {ev:x?}");
    }
}

#[test]
fn siena_default_workload_matches_interpreter() {
    run_differential(SienaConfig::default(), 300);
}

#[test]
fn siena_across_seeds() {
    for seed in [1u64, 7, 42, 1234] {
        run_differential(
            SienaConfig {
                seed,
                subscriptions: 20,
                ..Default::default()
            },
            150,
        );
    }
}

#[test]
fn siena_across_predicate_counts() {
    for k in 1..=5 {
        run_differential(
            SienaConfig {
                predicates_per_subscription: k,
                subscriptions: 15,
                seed: 99 + k as u64,
                ..Default::default()
            },
            150,
        );
    }
}

#[test]
fn siena_symbol_only_universe() {
    run_differential(
        SienaConfig {
            int_attributes: 0,
            symbol_attributes: 4,
            predicates_per_subscription: 2,
            subscriptions: 25,
            symbol_alphabet: 6, // dense: plenty of matches
            ..Default::default()
        },
        200,
    );
}

#[test]
fn siena_range_only_universe() {
    run_differential(
        SienaConfig {
            int_attributes: 4,
            symbol_attributes: 0,
            predicates_per_subscription: 3,
            subscriptions: 25,
            int_range: 50, // dense ranges: heavy overlap
            ..Default::default()
        },
        200,
    );
}
