//! Differential testing over generated workloads: for Siena-style
//! subscription sets, the compiled pipeline must forward each event to
//! exactly the union of the ports of the matching subscriptions —
//! checked against a direct AST interpreter, across seeds and
//! predicate counts.

use camus::compiler::{Compiler, CompilerOptions};
use camus::lang::ast::{Atom, Cond, Operand, Rule, Value};
use camus::workload::SienaConfig;

/// Direct interpreter for rule conditions on a decoded event.
fn eval_cond(cond: &Cond, fields: &dyn Fn(&str) -> u64, bits: &dyn Fn(&str) -> u32) -> bool {
    match cond {
        Cond::And(a, b) => eval_cond(a, fields, bits) && eval_cond(b, fields, bits),
        Cond::Or(a, b) => eval_cond(a, fields, bits) || eval_cond(b, fields, bits),
        Cond::Not(a) => !eval_cond(a, fields, bits),
        Cond::Atom(Atom { operand, op, value }) => {
            let name = match operand {
                Operand::Field(fr) => fr.field.as_str(),
                other => panic!("siena rules are stateless: {other:?}"),
            };
            let lhs = fields(name);
            let rhs = match value {
                Value::Int(n) => *n,
                Value::Symbol(_) => value.as_u64(bits(name)),
            };
            op.eval(lhs, rhs)
        }
        Cond::True => true,
    }
}

fn naive_ports(
    rules: &[Rule],
    fields: &dyn Fn(&str) -> u64,
    bits: &dyn Fn(&str) -> u32,
) -> Vec<u16> {
    let mut out = Vec::new();
    for r in rules {
        if eval_cond(&r.condition, fields, bits) {
            for a in &r.actions {
                if let camus::lang::ast::Action::Fwd(ports) = a {
                    out.extend_from_slice(ports);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn run_differential(cfg: SienaConfig, events: usize) {
    let w = cfg.generate();
    let compiler =
        Compiler::new(w.spec.clone(), CompilerOptions::raw()).expect("siena spec compiles");
    let prog = compiler.compile(&w.rules).expect("siena rules compile");
    assert!(prog.bdd.validate().is_ok());
    let mut pipe = prog.pipeline;

    // Decode each event by walking the spec layout (fields are
    // concatenated in declaration order).
    let ht = &w.spec.header_types[0];
    let field_at = |ev: &[u8], name: &str| -> u64 {
        let f = ht.field(name).expect("field exists");
        camus::pipeline::bits::extract_bits(ev, u64::from(f.bit_offset), f.bits)
            .expect("event covers the header")
    };
    let bits_of = |name: &str| ht.field(name).unwrap().bits;

    for ev in cfg.generate_events(&w, events) {
        let d = pipe.process(&ev, 0).expect("event parses");
        let got: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        let want = naive_ports(&w.rules, &|n| field_at(&ev, n), &bits_of);
        assert_eq!(got, want, "event {ev:x?}");
    }
}

#[test]
fn siena_default_workload_matches_interpreter() {
    run_differential(SienaConfig::default(), 300);
}

#[test]
fn siena_across_seeds() {
    for seed in [1u64, 7, 42, 1234] {
        run_differential(
            SienaConfig {
                seed,
                subscriptions: 20,
                ..Default::default()
            },
            150,
        );
    }
}

#[test]
fn siena_across_predicate_counts() {
    for k in 1..=5 {
        run_differential(
            SienaConfig {
                predicates_per_subscription: k,
                subscriptions: 15,
                seed: 99 + k as u64,
                ..Default::default()
            },
            150,
        );
    }
}

#[test]
fn siena_symbol_only_universe() {
    run_differential(
        SienaConfig {
            int_attributes: 0,
            symbol_attributes: 4,
            predicates_per_subscription: 2,
            subscriptions: 25,
            symbol_alphabet: 6, // dense: plenty of matches
            ..Default::default()
        },
        200,
    );
}

#[test]
fn siena_range_only_universe() {
    run_differential(
        SienaConfig {
            int_attributes: 4,
            symbol_attributes: 0,
            predicates_per_subscription: 3,
            subscriptions: 25,
            int_range: 50, // dense ranges: heavy overlap
            ..Default::default()
        },
        200,
    );
}
