//! The paper's running example, end to end: the three rules of
//! Figure 3 must compile into the three-table pipeline of Figure 4
//! (Shares, Stock, Leaf) with the same decision behaviour on every
//! region of the input space.

use camus::compiler::{Compiler, CompilerOptions};
use camus::lang::{parse_program, parse_spec};
use camus::pipeline::PortId;
use camus_bdd::order::OrderHeuristic;

/// A spec matching Figure 2/3: shares (range) and stock (exact).
const SPEC: &str = r#"
header_type order_t {
    fields {
        shares: 32;
        stock: 64;
    }
}
header order_t order;
@query_field(order.shares)
@query_field_exact(order.stock)
"#;

const RULES: &str = "shares < 60 and stock == AAPL : fwd(1)\n\
                     stock == AAPL : fwd(2)\n\
                     shares > 100 and stock == MSFT : fwd(3)";

fn packet(shares: u32, stock: &str) -> Vec<u8> {
    let mut b = Vec::with_capacity(12);
    b.extend_from_slice(&shares.to_be_bytes());
    let mut sym = [b' '; 8];
    for (i, c) in stock.bytes().take(8).enumerate() {
        sym[i] = c;
    }
    b.extend_from_slice(&sym);
    b
}

fn build() -> camus::compiler::CompiledProgram {
    let spec = parse_spec(SPEC).unwrap();
    // SpecOrder puts shares before stock — the order Figure 3 uses.
    let compiler = Compiler::new(
        spec,
        CompilerOptions {
            heuristic: OrderHeuristic::SpecOrder,
            ..CompilerOptions::raw()
        },
    )
    .unwrap();
    compiler.compile(&parse_program(RULES).unwrap()).unwrap()
}

#[test]
fn pipeline_has_figure4_tables() {
    let prog = build();
    let names: Vec<&str> = prog
        .pipeline
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    assert_eq!(names, vec!["t_order_shares", "t_order_stock", "t_actions"]);
    // Figure 4's Shares table has exactly three rows: <60, >100, and
    // the middle range.
    assert_eq!(prog.pipeline.tables[0].len(), 3);
    // One multicast group for the merged fwd(1,2).
    assert_eq!(prog.stats.mcast_groups, 1);
}

#[test]
fn decision_regions_match_figure3() {
    let prog = build();
    let mut pipe = prog.pipeline;
    // (shares, stock) → expected ports, per the BDD of Figure 3.
    let cases: &[(u32, &str, &[u16])] = &[
        (50, "AAPL", &[1, 2]), // shares<60 ∧ AAPL: rules 1+2 merge
        (59, "AAPL", &[1, 2]),
        (60, "AAPL", &[2]), // middle region: rule 2 only
        (100, "AAPL", &[2]),
        (101, "AAPL", &[2]), // shares>100 but AAPL ≠ MSFT
        (50, "MSFT", &[]),   // left path, not AAPL
        (80, "MSFT", &[]),
        (101, "MSFT", &[3]), // rule 3
        (u32::MAX, "MSFT", &[3]),
        (50, "ORCL", &[]),
        (101, "ORCL", &[]),
        (0, "AAPL", &[1, 2]),
    ];
    for &(shares, stock, want) in cases {
        let d = pipe.process(&packet(shares, stock), 0).unwrap();
        let got: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
        assert_eq!(got, want, "shares={shares} stock={stock}");
    }
}

#[test]
fn exhaustive_sweep_matches_reference_semantics() {
    let prog = build();
    let mut pipe = prog.pipeline;
    // Reference: evaluate the three rules directly.
    let reference = |shares: u32, stock: &str| -> Vec<u16> {
        let mut out = Vec::new();
        if shares < 60 && stock == "AAPL" {
            out.push(1);
        }
        if stock == "AAPL" {
            out.push(2);
        }
        if shares > 100 && stock == "MSFT" {
            out.push(3);
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    for stock in ["AAPL", "MSFT", "GOOG"] {
        for shares in (0..=200).chain([1000, u32::MAX - 1, u32::MAX]) {
            let d = pipe.process(&packet(shares, stock), 0).unwrap();
            let got: Vec<u16> = d.ports.iter().map(|p| p.0).collect();
            assert_eq!(
                got,
                reference(shares, stock),
                "shares={shares} stock={stock}"
            );
        }
    }
}

#[test]
fn every_heuristic_preserves_figure3_semantics() {
    for h in OrderHeuristic::ALL {
        let spec = parse_spec(SPEC).unwrap();
        let compiler = Compiler::new(
            spec,
            CompilerOptions {
                heuristic: h,
                ..CompilerOptions::raw()
            },
        )
        .unwrap();
        let prog = compiler.compile(&parse_program(RULES).unwrap()).unwrap();
        let mut pipe = prog.pipeline;
        let d = pipe.process(&packet(50, "AAPL"), 0).unwrap();
        assert_eq!(d.ports, vec![PortId(1), PortId(2)], "{}", h.name());
        let d = pipe.process(&packet(101, "MSFT"), 0).unwrap();
        assert_eq!(d.ports, vec![PortId(3)], "{}", h.name());
    }
}
