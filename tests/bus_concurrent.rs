//! The service-shell proof-by-test: N concurrent bus clients issue
//! interleaved `Subscribe`/`Unsubscribe` RPCs against a live `camusd`
//! while the packet path races them with injected market-data bursts,
//! and at the end:
//!
//! * **the oracle check** — forwarding after the last ack is
//!   bit-identical to a fresh big-switch recompile of the surviving
//!   subscription set (a probe trace submitted after all churn
//!   settles must decide exactly like the fresh pipeline, packet by
//!   packet — the RCU contract: packets submitted after an ack see
//!   that ack's generation);
//! * **ack/generation reconciliation** — every accepted mutation was
//!   acked with a published generation, the acked generations are
//!   exactly `1..=final` with no gaps, and each shared (coalesced)
//!   generation's `coalesced_with` equals the number of acks that
//!   rode it;
//! * **the exact ledger** — every injected packet got a decision
//!   (zero loss, clean quiesce), and the daemon's bus counters agree
//!   with the clients' own tallies.

use std::collections::BTreeMap;
use std::time::Duration;

use camus::compiler::{Compiler, CompilerOptions};
use camus::daemon::{Daemon, DaemonConfig};
use camus::lang::ast::Rule;
use camus::pipeline::ForwardDecision;
use camus::workload::{bench_feed, run_bus_churn, BusChurnConfig};

const CLIENTS: usize = 6;
const SLICE: usize = 6; // pool rules per client
const INITIAL: usize = 6; // rules installed at startup
/// Odd count: each client's last op re-subscribes its rule 0, so the
/// surviving set is `initial ∪ {slice[0] of every client}` — a known
/// set the oracle can recompile.
const OPS_PER_CLIENT: usize = 13;

#[test]
fn concurrent_churn_matches_fresh_recompile_of_survivors() {
    let mut cfg = DaemonConfig::itch(INITIAL, INITIAL + CLIENTS * SLICE).expect("itch config");
    cfg.engine.record_decisions = true;
    let pool = cfg.pool.clone();
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.bus_addrs()[0].clone();

    // Clients churn disjoint slices of the pool *after* the initial
    // install, so no request ever conflicts: every rejection below
    // would be a daemon bug.
    let churn_pool: Vec<Rule> = pool[INITIAL..].to_vec();
    let churn = {
        let addr = addr.clone();
        let churn_pool = churn_pool.clone();
        std::thread::spawn(move || {
            run_bus_churn(
                &addr,
                &churn_pool,
                &BusChurnConfig {
                    clients: CLIENTS,
                    ops_per_client: OPS_PER_CLIENT,
                },
            )
        })
    };

    // Race the churn with market-data bursts through the same control
    // thread the RPC epochs run on. Timestamps stay monotonic across
    // every inject so the probe replay is exact.
    let race_feed = bench_feed(2_000);
    let mut clock_us: u64 = 0;
    let mut injected: u64 = 0;
    let mut bursts = race_feed.chunks(100).cycle();
    while !churn.is_finished() {
        let burst: Vec<(Vec<u8>, u64)> = bursts
            .next()
            .expect("chunks of a non-empty feed")
            .iter()
            .map(|p| {
                clock_us += 25;
                (p.bytes.clone(), clock_us)
            })
            .collect();
        injected += burst.len() as u64;
        daemon.inject(burst).expect("inject during churn");
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = churn
        .join()
        .expect("churn thread")
        .expect("churn transport");

    // No contention by construction → no rejections, every op acked.
    assert_eq!(report.rejected, 0, "disjoint slices must never reject");
    assert_eq!(report.ops, (CLIENTS * OPS_PER_CLIENT) as u64);
    assert_eq!(report.accepted, report.ops);

    // Ack/generation reconciliation: acked generations are exactly
    // 1..=final with no gaps, and a generation shared by k acks was
    // stamped `coalesced_with == k` on every one of them.
    let mut by_generation: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for client in &report.clients {
        for &(generation, coalesced_with) in &client.acks {
            by_generation
                .entry(generation)
                .or_default()
                .push(coalesced_with);
        }
    }
    let generations: Vec<u64> = by_generation.keys().copied().collect();
    assert_eq!(
        generations,
        (1..=report.max_generation).collect::<Vec<u64>>(),
        "every published generation carries at least one ack, gap-free"
    );
    let mut coalesced_epochs = 0u64;
    for (generation, stamps) in &by_generation {
        for &stamp in stamps {
            assert_eq!(
                stamp as usize,
                stamps.len(),
                "generation {generation}: coalesced_with disagrees with the ack count"
            );
        }
        if stamps.len() > 1 {
            coalesced_epochs += 1;
        }
    }

    // The surviving set is known exactly: the initial install plus
    // each client's slice[0] (the odd final op re-subscribes it).
    let mut surviving: Vec<Rule> = pool[..INITIAL].to_vec();
    for c in 0..CLIENTS {
        surviving.push(churn_pool[c * SLICE].clone());
    }
    let mut expected_printed: Vec<String> = surviving.iter().map(|r| r.to_string()).collect();
    expected_printed.sort();

    let mut client = camus::bus::BusClient::connect(&addr).expect("snapshot client");
    let (snap_generation, snap_rules) = client.snapshot().expect("snapshot");
    assert_eq!(snap_generation, report.max_generation);
    assert_eq!(
        snap_rules, expected_printed,
        "snapshot is the surviving set"
    );

    // Probe: a fresh trace submitted strictly after every ack. The RCU
    // contract pins every probe packet to the final generation.
    let probe_feed = bench_feed(400);
    let probe: Vec<(Vec<u8>, u64)> = probe_feed
        .iter()
        .map(|p| {
            clock_us += 25;
            (p.bytes.clone(), clock_us)
        })
        .collect();
    daemon.inject(probe.clone()).expect("inject probe");

    let report_d = daemon.join();
    assert!(report_d.clean_quiesce, "SIGTERM-path drain is clean");
    assert!(report_d.zero_loss(), "every submitted packet accounted");
    assert!(report_d.engine.quarantined.is_empty());
    assert_eq!(report_d.submitted, injected + probe.len() as u64);
    assert_eq!(report_d.active_rules, expected_printed);

    // Daemon-side counters agree with the clients' tallies.
    assert_eq!(report_d.bus.mutations_applied, report.accepted);
    assert_eq!(report_d.bus.mutations_rejected, 0);
    assert_eq!(report_d.bus.epochs, report.max_generation);
    assert_eq!(report_d.engine.updates.published, report.max_generation);
    if coalesced_epochs > 0 {
        assert!(
            report_d.bus.requests_coalesced > 0,
            "coalesced epochs must show in the daemon counter"
        );
    }

    // The oracle: a fresh big-switch recompile of the surviving set.
    // Port sets are sorted+deduped at compile time, so the committed
    // order (nondeterministic under coalescing) cannot matter.
    let spec = camus::lang::parse_spec(camus::lang::spec::ITCH_SPEC).expect("spec");
    let compiler = Compiler::new(spec, CompilerOptions::default()).expect("compiler");
    let mut fresh = compiler
        .compile(&surviving)
        .expect("fresh recompile")
        .pipeline;

    let decisions = &report_d.engine.decisions;
    assert_eq!(decisions.len(), (injected + probe.len() as u64) as usize);
    let tail = &decisions[injected as usize..];
    for (i, ((bytes, now_us), got)) in probe.iter().zip(tail).enumerate() {
        let want: ForwardDecision = fresh.process(bytes, *now_us).expect("probe parses");
        assert_eq!(
            got, &want,
            "probe packet {i}: daemon decision diverged from the fresh recompile"
        );
    }
}
