//! Differential testing of the hot-symbol decision cache under live
//! churn: random update sequences driven through
//! [`IncrementalCompiler::update`] and consumed by the running engine
//! (cache **on**), with forwarding after every step — and after the
//! whole sequence, with the cache hot — compared bit-for-bit against a
//! fresh full `Compiler::compile` of the cumulative rule set executed
//! on the sequential, uncached path. This is the oracle pattern of
//! `tests/churn_differential.rs` pointed at the cache: a stale cached
//! decision surviving a generation bump, or a hit replaying the wrong
//! ports, shows up as a decision mismatch.
//!
//! The rule sets are symbol-only fan-outs (`stock == S : fwd(p)`) —
//! the shape the cache is *provably sound* for (the engine statically
//! refuses to cache programs whose decisions depend on more than the
//! key field; see `Pipeline::cacheable_on`).

use camus::compiler::{Compiler, CompilerOptions, IncrementalCompiler};
use camus::engine::{shard, Engine, EngineConfig};
use camus::itch::itch::{AddOrder, ItchMessage, Side};
use camus::itch::{build_feed_packet, FeedConfig};
use camus::lang::{parse_program, parse_spec, Rule};
use camus::pipeline::ForwardDecision;
use camus::workload::itch_subs::stock_symbol;

/// `stock == SYM(i) : fwd(port)` as a parsed rule.
fn symbol_rule(i: usize, port: u16) -> Rule {
    let src = format!("stock == {} : fwd({port})\n", stock_symbol(i));
    parse_program(&src).expect("rule parses").remove(0)
}

/// A deterministic eval trace: add-orders cycling through `symbols`
/// distinct tickers (more than any rule set subscribes to, so misses
/// are exercised), with an occasional no-add-order packet thrown in.
fn eval_trace(packets: usize, symbols: usize) -> Vec<Vec<u8>> {
    let cfg = FeedConfig::default();
    (0..packets)
        .map(|k| {
            let msgs = if k % 17 == 9 {
                vec![ItchMessage::OrderDelete {
                    order_ref: k as u64,
                }]
            } else {
                vec![ItchMessage::AddOrder(AddOrder::new(
                    &stock_symbol(k % symbols),
                    if k % 2 == 0 { Side::Buy } else { Side::Sell },
                    10 + (k as u32 % 90),
                    100 + (k as u64 % 400) as u32,
                ))]
            };
            build_feed_packet(&cfg, k as u64, &msgs)
        })
        .collect()
}

/// Sequential, uncached oracle: fresh full compile of `active`, every
/// packet through `Pipeline::process` in order.
fn sequential_decisions(
    compiler: &Compiler,
    active: &[Rule],
    trace: &[Vec<u8>],
) -> Vec<ForwardDecision> {
    let mut pipe = compiler
        .compile(active)
        .expect("active set compiles")
        .pipeline;
    trace
        .iter()
        .map(|p| pipe.process(p, 0).expect("frame processes"))
        .collect()
}

/// Runs one churn sequence with the cache enabled at `workers` workers
/// and checks every recorded decision against the oracle.
fn run_cached_churn(seed: u64, workers: usize, removes_per_step: usize) {
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).expect("spec parses");
    let opts = CompilerOptions::raw();

    // Alphabet pool: 24 symbol-only rules over 12 tickers, ports
    // seeded so different sequences wire different fan-outs.
    let pool: Vec<Rule> = (0..24)
        .map(|i| symbol_rule(i % 12, ((i as u64 * 7 + seed) % 32 + 1) as u16))
        .collect();
    let initial: Vec<Rule> = pool[..8].to_vec();

    let mut session =
        IncrementalCompiler::new(spec.clone(), &opts, &pool).expect("alphabet resolves");
    let install = session.install(&initial).expect("initial install");
    let full_compiler = Compiler::new(spec, opts).expect("spec compiles");

    let cfg = EngineConfig {
        workers,
        batch_packets: 16,
        record_decisions: true,
        decision_cache: Some("add_order.stock".into()),
        ..Default::default()
    };
    let mut engine = Engine::start(&install.pipeline, &cfg, shard::itch_symbol_shard());
    let trace = eval_trace(120, 30);
    let mut expected: Vec<ForwardDecision> = Vec::new();
    let mut active = initial;

    // Four churn steps: forward a pass under each generation, then
    // publish the next one. Quiescing first makes the generation each
    // packet ran under exact, so the oracle is too.
    for step in 0..4usize {
        for p in &trace {
            engine.submit(p, 0);
        }
        engine.quiesce().expect("quiesce");
        expected.extend(sequential_decisions(&full_compiler, &active, &trace));

        let add: Vec<Rule> = (0..2)
            .map(|j| pool[(8 + step * 2 + j) % pool.len()].clone())
            .collect();
        let remove: Vec<Rule> = active[..removes_per_step.min(active.len())].to_vec();
        let report = session.update(&add, &remove).expect("update compiles");
        for r in &remove {
            let pos = active
                .iter()
                .position(|a| a == r)
                .expect("removed rule active");
            active.remove(pos);
        }
        active.extend(add);
        engine.apply_update(&report).expect("engine adopts update");
    }

    // Post-churn: two passes under the final generation — the second
    // runs almost entirely out of the cache.
    for _ in 0..2 {
        for p in &trace {
            engine.submit(p, 0);
        }
    }
    engine.quiesce().expect("final quiesce");
    let final_pass = sequential_decisions(&full_compiler, &active, &trace);
    expected.extend(final_pass.clone());
    expected.extend(final_pass);

    let report = engine.finish();
    assert!(report.error.is_none(), "seed {seed}: {:?}", report.error);
    assert!(report.quarantined.is_empty(), "seed {seed}");
    assert_eq!(
        report.decisions.len(),
        expected.len(),
        "seed {seed} w{workers}: decision count"
    );
    for (i, (got, want)) in report.decisions.iter().zip(expected.iter()).enumerate() {
        assert_eq!(
            got.ports, want.ports,
            "seed {seed} w{workers}: packet {i} diverged (cache vs full recompile)"
        );
    }
    // The cache must have been genuinely live: the program is
    // cacheable, so every add-order message is a hit or a miss.
    assert!(
        report.hotpath.cache_hits > 0,
        "seed {seed} w{workers}: cache never hit — was it armed? {:?}",
        report.hotpath
    );
}

/// The compiled shape these tests rely on really is cacheable: the
/// spec-level `@query_*` declarations compile to state bindings even
/// for pure fan-out rule sets, and `cacheable_on` must see through
/// that (a binding no table keys on is decision-inert).
#[test]
fn symbol_only_program_is_cacheable_on_stock() {
    let spec = parse_spec(camus::lang::spec::ITCH_SPEC).expect("spec parses");
    let compiler = Compiler::new(spec, CompilerOptions::raw()).expect("spec compiles");
    let rules: Vec<Rule> = (0..8)
        .map(|i| symbol_rule(i, (i % 32 + 1) as u16))
        .collect();
    let p = compiler.compile(&rules).expect("compiles").pipeline;
    let stock = p.layout.get("add_order.stock").expect("stock field exists");
    assert!(!p.state_bindings.is_empty(), "spec declares query bindings");
    assert!(p.cacheable_on(stock));
}

#[test]
fn fifty_cached_churn_sequences_match_full_recompile() {
    // ≥ 50 sequences; worker counts and removal pressure both cycle so
    // single-worker, sharded and oversubscribed (8 workers on fewer
    // cores) engines all appear.
    for seed in 0..50u64 {
        let workers = [1usize, 2, 8][(seed % 3) as usize];
        run_cached_churn(seed, workers, (seed % 3) as usize);
    }
}

#[test]
fn post_churn_cache_identical_at_each_worker_count() {
    // The acceptance criterion spelled out: same sequence, explicitly
    // at 1, 2 and 8 workers.
    for workers in [1usize, 2, 8] {
        run_cached_churn(0xCAFE, workers, 1);
    }
}
